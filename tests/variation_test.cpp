// Monte-Carlo / process-variation layer tests.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/op.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"
#include "nemsim/variation/montecarlo.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Mosfet;
using devices::MosPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;

Circuit make_two_transistor_circuit() {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.6));
  ckt.add<Mosfet>("M1", d, g, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 1.0_um, 0.1_um);
  ckt.add<Mosfet>("M2", d, g, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 1.0_um, 0.1_um);
  return ckt;
}

TEST(Variation, AppliesIndependentShifts) {
  Circuit ckt = make_two_transistor_circuit();
  Rng rng(1);
  variation::apply_vth_variation(ckt, 0.06, rng);
  const double s1 = ckt.find<Mosfet>("M1").vth_shift();
  const double s2 = ckt.find<Mosfet>("M2").vth_shift();
  EXPECT_NE(s1, 0.0);
  EXPECT_NE(s1, s2);
}

TEST(Variation, ClearRestoresNominal) {
  Circuit ckt = make_two_transistor_circuit();
  Rng rng(1);
  variation::apply_vth_variation(ckt, 0.06, rng);
  variation::clear_vth_variation(ckt);
  EXPECT_DOUBLE_EQ(ckt.find<Mosfet>("M1").vth_shift(), 0.0);
  EXPECT_DOUBLE_EQ(ckt.find<Mosfet>("M2").vth_shift(), 0.0);
}

TEST(Variation, ZeroSigmaMeansZeroShift) {
  Circuit ckt = make_two_transistor_circuit();
  Rng rng(1);
  variation::apply_vth_variation(ckt, 0.0, rng);
  EXPECT_DOUBLE_EQ(ckt.find<Mosfet>("M1").vth_shift(), 0.0);
}

TEST(MonteCarlo, DeterministicAcrossRuns) {
  Circuit ckt = make_two_transistor_circuit();
  variation::MonteCarloOptions options;
  options.trials = 8;
  options.seed = 42;
  auto metric = [](Circuit& c) {
    spice::MnaSystem system(c);
    spice::OpResult op = spice::operating_point(system);
    return -op.value("i(Vd)");
  };
  auto r1 = variation::monte_carlo(ckt, metric, options);
  auto r2 = variation::monte_carlo(ckt, metric, options);
  ASSERT_EQ(r1.samples.size(), r2.samples.size());
  for (std::size_t i = 0; i < r1.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.samples[i], r2.samples[i]);
  }
}

TEST(MonteCarlo, SpreadGrowsWithSigma) {
  Circuit ckt = make_two_transistor_circuit();
  auto metric = [](Circuit& c) {
    spice::MnaSystem system(c);
    spice::OpResult op = spice::operating_point(system);
    return -op.value("i(Vd)");
  };
  variation::MonteCarloOptions small;
  small.trials = 40;
  small.sigma_fraction = 0.03;
  variation::MonteCarloOptions large = small;
  large.sigma_fraction = 0.09;
  auto rs = variation::monte_carlo(ckt, metric, small);
  auto rl = variation::monte_carlo(ckt, metric, large);
  EXPECT_GT(rl.stats.stddev(), rs.stats.stddev());
  // Relative spread at Vgs = 0.6 V should be clearly visible.
  EXPECT_GT(rl.stats.stddev() / rl.stats.mean(), 0.01);
}

TEST(MonteCarlo, ShiftsClearedAfterRun) {
  Circuit ckt = make_two_transistor_circuit();
  variation::MonteCarloOptions options;
  options.trials = 3;
  auto metric = [](Circuit&) { return 1.0; };
  variation::monte_carlo(ckt, metric, options);
  EXPECT_DOUBLE_EQ(ckt.find<Mosfet>("M1").vth_shift(), 0.0);
}

TEST(MonteCarlo, FailuresToleratedAndCounted) {
  Circuit ckt = make_two_transistor_circuit();
  variation::MonteCarloOptions options;
  options.trials = 6;
  int call = 0;
  auto metric = [&](Circuit&) -> double {
    if (++call % 2 == 0) throw ConvergenceError("synthetic failure");
    return static_cast<double>(call);
  };
  auto r = variation::monte_carlo(ckt, metric, options);
  EXPECT_EQ(r.failures, 3u);
  EXPECT_EQ(r.stats.count(), 3u);
}

TEST(MonteCarlo, AllFailuresThrow) {
  Circuit ckt = make_two_transistor_circuit();
  variation::MonteCarloOptions options;
  options.trials = 3;
  auto metric = [](Circuit&) -> double {
    throw ConvergenceError("always fails");
  };
  EXPECT_THROW(variation::monte_carlo(ckt, metric, options), Error);
}

TEST(MonteCarlo, MeanPlusSigmasAccessor) {
  variation::MonteCarloResult r;
  r.stats.add(1.0);
  r.stats.add(3.0);
  EXPECT_DOUBLE_EQ(r.mean_plus_sigmas(0.0), 2.0);
  EXPECT_GT(r.mean_plus_sigmas(3.0), r.worst() - 1.0);
}

}  // namespace
}  // namespace nemsim
