// Property test: every device's analytic Jacobian must match a central
// finite difference of its residual, at randomized bias points and in
// both DC and transient modes.  This is the single most effective guard
// against compact-model derivative bugs (which Newton would otherwise
// paper over with slow, fragile convergence).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/engine.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/rng.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using spice::AnalysisMode;
using spice::Circuit;
using spice::MnaSystem;

/// Checks J == d f / d x by central differences on a given system state.
void check_jacobian(MnaSystem& system, const linalg::Vector& x,
                    AnalysisMode mode, double time, double dt,
                    const std::string& label) {
  const std::size_t n = system.num_unknowns();
  linalg::Matrix jac;
  linalg::Vector f0, scale;
  system.assemble(x, jac, f0, scale, mode, time, dt, /*gmin=*/0.0,
                  /*source_factor=*/1.0);

  for (std::size_t col = 0; col < n; ++col) {
    // Step size: relative to the unknown's magnitude with a kind-aware
    // floor (displacements are ~1e-9, voltages ~1).
    const auto& info = system.unknown_info(col);
    double h = 1e-7 * std::max(std::abs(x[col]), 1.0);
    if (info.kind == spice::UnknownKind::kInternal &&
        info.name.ends_with(".x")) {
      h = 1e-13;
    }

    linalg::Vector xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    linalg::Matrix jp;
    linalg::Vector fp, fm, sp;
    system.assemble(xp, jp, fp, sp, mode, time, dt, 0.0, 1.0);
    system.assemble(xm, jp, fm, sp, mode, time, dt, 0.0, 1.0);

    for (std::size_t row = 0; row < n; ++row) {
      const double fd = (fp[row] - fm[row]) / (2.0 * h);
      const double an = jac(row, col);
      // Mixed tolerance: relative where the entry is large, plus the
      // roundoff floor of the finite difference itself - the residual is
      // a sum of terms of magnitude ~scale[row], so fp-fm cannot resolve
      // below a few ULPs of that, i.e. ~eps*scale/h after division.
      const double row_mag = std::max({std::abs(an), std::abs(fd), 1e-30});
      const double fd_roundoff =
          32.0 * 2.22e-16 * (scale[row] + info.abstol) / (2.0 * h);
      const double tol = 2e-3 * row_mag + fd_roundoff;
      std::string state;
      for (std::size_t i = 0; i < n; ++i) {
        state += system.unknown_info(i).name + "=" + std::to_string(x[i]) +
                 " ";
      }
      EXPECT_NEAR(an, fd, tol)
          << label << ": d f(" << system.unknown_info(row).name << ") / d "
          << info.name << " at " << state;
    }
  }
}

/// Builds random-ish iterates within physical ranges and checks both
/// analysis modes.
void check_circuit(Circuit& ckt, const std::string& label,
                   std::uint64_t seed) {
  MnaSystem system(ckt);
  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    linalg::Vector x(system.num_unknowns());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const auto& info = system.unknown_info(i);
      switch (info.kind) {
        case spice::UnknownKind::kNodeVoltage:
          x[i] = rng.uniform(-0.2, 1.4);
          break;
        case spice::UnknownKind::kBranchCurrent:
          x[i] = rng.uniform(-1e-3, 1e-3);
          break;
        case spice::UnknownKind::kInternal:
          if (info.name.ends_with(".x")) {
            x[i] = rng.uniform(0.0, 1.8e-9);  // inside the gap
          } else {
            x[i] = rng.uniform(-20.0, 20.0);  // velocity
          }
          break;
      }
    }
    // DC mode is skipped for NEMFETs: their DC x-row pins the position to
    // a scanned branch solution whose derivative is only piecewise-smooth
    // (the scan/bisection introduces quantization the FD check would
    // flag spuriously), so DC is checked separately below for the others.
    system.begin_step(1e-10, 1e-12);
    check_jacobian(system, x, AnalysisMode::kTransient, 1e-10, 1e-12,
                   label + " tran#" + std::to_string(trial));
  }
}

TEST(Jacobian, PassivesAndSources) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId c = ckt.node("c");
  ckt.add<devices::VoltageSource>("V1", a, ckt.gnd(),
                                  devices::SourceWave::dc(1.0));
  ckt.add<devices::CurrentSource>("I1", b, ckt.gnd(),
                                  devices::SourceWave::dc(1e-4));
  ckt.add<devices::Resistor>("R1", a, b, 1e3);
  ckt.add<devices::Capacitor>("C1", b, c, 1.0_fF);
  ckt.add<devices::Inductor>("L1", c, ckt.gnd(), 1.0_nH);
  check_circuit(ckt, "passives", 1);
}

TEST(Jacobian, ControlledSources) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId c = ckt.node("c");
  ckt.add<devices::VoltageSource>("V1", a, ckt.gnd(),
                                  devices::SourceWave::dc(0.5));
  ckt.add<devices::Vcvs>("E1", b, ckt.gnd(), a, ckt.gnd(), 3.0);
  ckt.add<devices::Vccs>("G1", c, ckt.gnd(), b, a, 2e-3);
  ckt.add<devices::Resistor>("R1", b, c, 2e3);
  ckt.add<devices::Resistor>("R2", c, ckt.gnd(), 2e3);
  check_circuit(ckt, "controlled", 2);
}

TEST(Jacobian, Diode) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<devices::VoltageSource>("V1", a, ckt.gnd(),
                                  devices::SourceWave::dc(0.7));
  spice::NodeId b = ckt.node("b");
  ckt.add<devices::Resistor>("R1", a, b, 1e3);
  ckt.add<devices::Diode>("D1", b, ckt.gnd());
  check_circuit(ckt, "diode", 3);
}

TEST(Jacobian, MosfetBothPolarities) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  spice::NodeId s = ckt.node("s");
  ckt.add<devices::VoltageSource>("Vd", d, ckt.gnd(),
                                  devices::SourceWave::dc(1.0));
  ckt.add<devices::VoltageSource>("Vg", g, ckt.gnd(),
                                  devices::SourceWave::dc(0.6));
  ckt.add<devices::VoltageSource>("Vs", s, ckt.gnd(),
                                  devices::SourceWave::dc(0.1));
  ckt.add<devices::Mosfet>("Mn", d, g, s, devices::MosPolarity::kNmos,
                           tech::nmos_90nm(), 0.5_um, 0.1_um);
  ckt.add<devices::Mosfet>("Mp", d, g, s, devices::MosPolarity::kPmos,
                           tech::pmos_90nm(), 0.5_um, 0.1_um);
  check_circuit(ckt, "mosfet", 4);
}

TEST(Jacobian, NemfetTransient) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<devices::VoltageSource>("Vd", d, ckt.gnd(),
                                  devices::SourceWave::dc(1.0));
  ckt.add<devices::VoltageSource>("Vg", g, ckt.gnd(),
                                  devices::SourceWave::dc(0.8));
  ckt.add<devices::Nemfet>("X1", d, g, ckt.gnd(), devices::NemsPolarity::kN,
                           tech::nems_90nm(), 1.0_um);
  check_circuit(ckt, "nemfet", 5);
}

TEST(Jacobian, NemfetPmosPolarity) {
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  spice::NodeId s = ckt.node("s");
  ckt.add<devices::VoltageSource>("Vs", s, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::VoltageSource>("Vd", d, ckt.gnd(),
                                  devices::SourceWave::dc(0.3));
  ckt.add<devices::VoltageSource>("Vg", g, ckt.gnd(),
                                  devices::SourceWave::dc(0.2));
  ckt.add<devices::Nemfet>("X1", d, g, s, devices::NemsPolarity::kP,
                           tech::nems_90nm(), 1.0_um);
  check_circuit(ckt, "nemfet-p", 6);
}

TEST(Jacobian, MixedCircuitWithEverything) {
  // An inverter with a NEMS footer and reactive load: all device classes
  // stamping into one Jacobian.
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  spice::NodeId vgnd = ckt.node("vgnd");
  spice::NodeId slp = ckt.node("slp");
  ckt.add<devices::VoltageSource>("Vdd", vdd, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::VoltageSource>("Vin", in, ckt.gnd(),
                                  devices::SourceWave::dc(0.5));
  ckt.add<devices::VoltageSource>("Vslp", slp, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::Mosfet>("Mp", out, in, vdd, devices::MosPolarity::kPmos,
                           tech::pmos_90nm(), 0.4_um, 0.1_um);
  ckt.add<devices::Mosfet>("Mn", out, in, vgnd, devices::MosPolarity::kNmos,
                           tech::nmos_90nm(), 0.2_um, 0.1_um);
  ckt.add<devices::Nemfet>("Xs", vgnd, slp, ckt.gnd(),
                           devices::NemsPolarity::kN, tech::nems_90nm(),
                           1.0_um);
  ckt.add<devices::Capacitor>("CL", out, ckt.gnd(), 2.0_fF);
  check_circuit(ckt, "mixed", 7);
}

}  // namespace
}  // namespace nemsim
