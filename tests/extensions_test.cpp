// Tests for the extension features: netlist export, the Section 5.3
// pull-up-only hybrid cell, the Section 5.1 column-leakage study,
// Figure 16 granularity comparison, process corners / temperature, and
// the keeper auto-sizing utility.
#include <gtest/gtest.h>

#include <string>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/power_gating.h"
#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/tech/corners.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using namespace nemsim::core;

// ------------------------------------------------------- netlist export

TEST(NetlistExport, ContainsAllDevicesAndNodes) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("alpha");
  spice::NodeId b = ckt.node("beta");
  ckt.add<devices::VoltageSource>("Vsup", a, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::Resistor>("Rload", a, b, 2.5e3);
  ckt.add<devices::Capacitor>("Cload", b, ckt.gnd(), 3.0_fF);
  ckt.add<devices::Mosfet>("Mx", b, a, ckt.gnd(),
                           devices::MosPolarity::kNmos, tech::nmos_90nm(),
                           0.3_um, 0.1_um);
  const std::string net = spice::netlist_string(ckt, "unit test");
  EXPECT_NE(net.find("* unit test"), std::string::npos);
  EXPECT_NE(net.find("Vsup alpha 0 DC 1.2"), std::string::npos);
  EXPECT_NE(net.find("Rload alpha beta"), std::string::npos);
  EXPECT_NE(net.find("Cload beta 0"), std::string::npos);
  EXPECT_NE(net.find("Mx beta alpha 0 NMOS"), std::string::npos);
  EXPECT_NE(net.find(".end"), std::string::npos);
}

TEST(NetlistExport, PulseAndNemfetForms) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<devices::VoltageSource>(
      "Vp", a, ckt.gnd(),
      devices::SourceWave::pulse(0.0, 1.2, 1e-9, 2e-11, 2e-11, 5e-10));
  ckt.add<devices::Nemfet>("Xn", a, a, ckt.gnd(),
                           devices::NemsPolarity::kN, tech::nems_90nm(),
                           1.0_um);
  const std::string net = spice::netlist_string(ckt);
  EXPECT_NE(net.find("PULSE(0 1.2"), std::string::npos);
  EXPECT_NE(net.find("NEMFET_N"), std::string::npos);
  EXPECT_NE(net.find("VPI="), std::string::npos);
}

TEST(NetlistExport, WholeDynamicOrGateExports) {
  DynamicOrConfig c;
  c.fanin = 4;
  c.hybrid = true;
  DynamicOrGate gate = build_dynamic_or(c);
  const std::string net = spice::netlist_string(gate.ckt());
  // Library cells export as .subckt definitions and instances as X cards.
  EXPECT_NE(net.find(".subckt domino_leg_hybrid dyn in"), std::string::npos);
  EXPECT_NE(net.find(".subckt inverter in out vdd vss"), std::string::npos);
  EXPECT_NE(net.find("Xleg0 dyn in0 domino_leg_hybrid"), std::string::npos);
  EXPECT_NE(net.find("Xleg3 dyn in3 domino_leg_hybrid"), std::string::npos);
  EXPECT_NE(net.find("XINVout dyn out vdd 0 inverter"), std::string::npos);
  EXPECT_EQ(net.find("no netlist exporter"), std::string::npos);
  // Flattened hierarchical names never leak into the exported cards.
  EXPECT_EQ(net.find("Xleg0.MPD"), std::string::npos);
}

// --------------------------------------------- pull-up-only hybrid cell

TEST(HybridPullupOnly, NoReadLatencyPenalty) {
  SramConfig conv;
  SramConfig pu;
  pu.kind = SramKind::kHybridPullupOnly;
  const double lc = measure_read_latency(conv);
  const double lp = measure_read_latency(pu);
  // "low ON current of PMOS NEMS devices does not affect the read
  // latency" - within a few percent.
  EXPECT_NEAR(lp / lc, 1.0, 0.05);
}

TEST(HybridPullupOnly, LeakageSavingSmallerThanFullHybrid) {
  SramConfig conv;
  SramConfig pu;
  pu.kind = SramKind::kHybridPullupOnly;
  SramConfig full;
  full.kind = SramKind::kHybrid;
  const double leak_conv = measure_standby_leakage(conv);
  const double leak_pu = measure_standby_leakage(pu);
  const double leak_full = measure_standby_leakage(full);
  EXPECT_LT(leak_pu, leak_conv);       // it does save...
  EXPECT_GT(leak_pu, 10.0 * leak_full);  // ...but the leaky NMOS dominates
}

TEST(HybridPullupOnly, HoldsBothValues) {
  SramConfig c;
  c.kind = SramKind::kHybridPullupOnly;
  for (bool one : {false, true}) {
    c.stored_one = one;
    EXPECT_GT(measure_standby_leakage(c), 0.0) << "stored_one=" << one;
  }
}

// --------------------------------------------------- column leakage study

TEST(ColumnStudy, IdleCellLeakageStretchesRead) {
  SramConfig c;
  const double alone = measure_column_read_latency(c, 0);
  const double with_256 = measure_column_read_latency(c, 256);
  EXPECT_GT(with_256, 1.1 * alone);
}

TEST(ColumnStudy, MoreIdleCellsIsMonotonicallyWorse) {
  SramConfig c;
  double prev = measure_column_read_latency(c, 0);
  for (std::size_t idle : {64ul, 256ul, 1024ul}) {
    const double lat = measure_column_read_latency(c, idle);
    EXPECT_GT(lat, prev) << idle;
    prev = lat;
  }
}

TEST(ColumnStudy, ZeroIdleMatchesPlainMeasurement) {
  SramConfig c;
  EXPECT_DOUBLE_EQ(measure_column_read_latency(c, 0),
                   measure_read_latency(c));
}

// ------------------------------------------------- granularity (Fig 16)

TEST(Granularity, CoarseSharesBetterAtEqualArea) {
  GranularityConfig c;
  auto fine = measure_granularity(SleepGranularity::kFineGrain, c);
  auto coarse = measure_granularity(SleepGranularity::kCoarseGrain, c);
  // Same silicon; the shared switch sees at most one gate switching at a
  // time here, so coarse is no slower.
  EXPECT_LE(coarse.delay, fine.delay * 1.05);
  EXPECT_GT(fine.worst_droop, 0.0);
  EXPECT_GT(coarse.worst_droop, 0.0);
}

TEST(Granularity, NemsVariantCutsSleepLeakage) {
  GranularityConfig cmos;
  GranularityConfig nems;
  nems.device = SleepDeviceType::kNems;
  auto rc = measure_granularity(SleepGranularity::kCoarseGrain, cmos);
  auto rn = measure_granularity(SleepGranularity::kCoarseGrain, nems);
  EXPECT_LT(rn.sleep_leakage, 0.1 * rc.sleep_leakage);
}

// --------------------------------------------------- corners/temperature

TEST(Corners, FastLeaksMoreSlowLeaksLess) {
  auto iv_at = [&](tech::Corner corner) {
    return tech::characterize_mosfet(
        tech::at_corner(tech::nmos_90nm(), corner),
        devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  };
  auto tt = iv_at(tech::Corner::kTypical);
  auto ff = iv_at(tech::Corner::kFast);
  auto ss = iv_at(tech::Corner::kSlow);
  EXPECT_GT(ff.ioff, 2.0 * tt.ioff);
  EXPECT_LT(ss.ioff, 0.5 * tt.ioff);
  EXPECT_GT(ff.ion, tt.ion);
  EXPECT_LT(ss.ion, tt.ion);
  EXPECT_STREQ(tech::corner_name(tech::Corner::kFast), "FF");
}

TEST(Temperature, CmosLeakageExplodesNemsFloorDoesNot) {
  auto cmos_cold = tech::characterize_mosfet(
      tech::at_temperature(tech::nmos_90nm(), 300.0),
      devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  auto cmos_hot = tech::characterize_mosfet(
      tech::at_temperature(tech::nmos_90nm(), 400.0),
      devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  EXPECT_GT(cmos_hot.ioff, 5.0 * cmos_cold.ioff);

  auto nems_cold = tech::characterize_nemfet(
      tech::at_temperature(tech::nems_90nm(), 300.0), 1.0_um, 1.2);
  auto nems_hot = tech::characterize_nemfet(
      tech::at_temperature(tech::nems_90nm(), 400.0), 1.0_um, 1.2);
  // The tunneling floor dominates the NEMS OFF state at both temps.
  EXPECT_LT(nems_hot.iv.ioff, 1.5 * nems_cold.iv.ioff);
}

TEST(Temperature, RejectsNonPositive) {
  EXPECT_THROW(tech::at_temperature(tech::nmos_90nm(), 0.0),
               InvalidArgument);
}

// ------------------------------------------------ keeper sizing utility

TEST(KeeperSizing, MeetsTargetMinimally) {
  DynamicOrConfig base;
  base.fanin = 4;
  base.fanout = 1;
  const double w = size_keeper_for_noise_margin(base, 0.35, 0.12e-6,
                                                0.8e-6, 0.04e-6);
  // The found width meets the target...
  DynamicOrConfig c = base;
  c.autosize_keeper = false;
  c.keeper_width = w;
  DynamicOrGate gate = build_dynamic_or(c);
  EXPECT_GE(measure_noise_margin(gate, 0.02), 0.33);
  // ... and a clearly smaller keeper does not.
  c.keeper_width = 0.5 * w;
  DynamicOrGate small = build_dynamic_or(c);
  EXPECT_LT(measure_noise_margin(small, 0.02), 0.35);
}

TEST(KeeperSizing, UnreachableTargetThrows) {
  DynamicOrConfig base;
  base.fanin = 4;
  EXPECT_THROW(size_keeper_for_noise_margin(base, 1.19), ConvergenceError);
}

}  // namespace
}  // namespace nemsim
