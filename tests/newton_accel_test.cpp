// Quiescent-device bypass and modified-Newton Jacobian reuse: the
// off-by-default contract (bitwise-identical runs, zero counters), the
// correctness contract (accelerated solutions match the baseline within
// the Newton tolerances, even with a coarse bypass tolerance), and the
// determinism of the chunked warm-start dc_sweep_parallel mode.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"

namespace nemsim {
namespace {

using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

/// A CMOS inverter driving a load cap, with a pulse input: nonlinear,
/// has companion state, and is cheap enough to run many times.
Circuit make_inverter() {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>(
      "Vin", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.3e-9, 30e-12, 30e-12, 0.6e-9));
  ckt.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4e-6, 1e-7);
  ckt.add<Mosfet>("MN", out, in, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 0.2e-6, 1e-7);
  ckt.add<Capacitor>("CL", out, ckt.gnd(), 5e-15);
  return ckt;
}

spice::Waveform run_inverter(const spice::NewtonOptions& newton,
                             spice::NewtonStats* stats = nullptr) {
  Circuit ckt = make_inverter();
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.newton = newton;
  options.tstop = 1.5e-9;
  options.dt_initial = 1e-13;
  options.newton_stats = stats;
  return spice::transient(system, options);
}

void expect_identical(const spice::Waveform& a, const spice::Waveform& b) {
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (std::size_t k = 0; k < a.num_samples(); ++k) {
    ASSERT_EQ(a.times()[k], b.times()[k]) << "sample " << k;
    for (std::size_t s = 0; s < a.num_signals(); ++s) {
      ASSERT_EQ(a.sample(s, k), b.sample(s, k))
          << a.signal_names()[s] << " sample " << k;
    }
  }
}

// ------------------------------------------------------- off-path contract

TEST(NewtonAccel, OffPathCountersStayZero) {
  spice::NewtonStats stats;
  run_inverter(spice::NewtonOptions{}, &stats);
  EXPECT_GT(stats.nonlinear_evals, 0);
  EXPECT_EQ(stats.bypassed_evals, 0);
  EXPECT_EQ(stats.stale_jacobian_solves, 0);
  EXPECT_EQ(stats.forced_refreshes, 0);
  EXPECT_EQ(stats.bypass_hit_rate(), 0.0);
}

TEST(NewtonAccel, OffRunsAreBitwiseReproducible) {
  const spice::Waveform a = run_inverter(spice::NewtonOptions{});
  const spice::Waveform b = run_inverter(spice::NewtonOptions{});
  expect_identical(a, b);
}

TEST(NewtonAccel, AccelRunLeavesNoStateBehind) {
  // on-then-off on the SAME system must reproduce a fresh off run
  // bitwise: disabling the accelerators fully clears their state.
  Circuit ckt = make_inverter();
  MnaSystem system(ckt);

  spice::TransientOptions on;
  on.tstop = 1.5e-9;
  on.dt_initial = 1e-13;
  on.newton.bypass = true;
  on.newton.jacobian_reuse = true;
  spice::transient(system, on);

  spice::TransientOptions off = on;
  off.newton = spice::NewtonOptions{};
  const spice::Waveform after = spice::transient(system, off);

  const spice::Waveform fresh = run_inverter(spice::NewtonOptions{});
  expect_identical(after, fresh);
}

// ---------------------------------------------------- correctness contract

TEST(NewtonAccel, AcceleratedTransientMatchesBaseline) {
  spice::NewtonStats base_stats, accel_stats;
  const spice::Waveform base = run_inverter(spice::NewtonOptions{},
                                            &base_stats);
  spice::NewtonOptions accel;
  accel.bypass = true;
  accel.jacobian_reuse = true;
  const spice::Waveform fast = run_inverter(accel, &accel_stats);

  // Compare on plateaus and mid-transition via interpolation; the two
  // runs pick their own step grids, so probe times are shared.
  for (double t : {0.1e-9, 0.25e-9, 0.5e-9, 0.8e-9, 1.2e-9, 1.5e-9}) {
    EXPECT_NEAR(base.at("v(out)", t), fast.at("v(out)", t), 5e-3)
        << "t = " << t;
  }
  // The accelerators actually engaged.
  EXPECT_GT(accel_stats.bypassed_evals, 0);
  EXPECT_GT(accel_stats.bypass_hit_rate(), 0.0);
  EXPECT_LE(accel_stats.bypass_hit_rate(), 1.0);
  EXPECT_EQ(base_stats.bypassed_evals, 0);
}

TEST(NewtonAccel, CoarseBypassToleranceStaysWithinNewtonTolerance) {
  // Even with a deliberately coarse replay tolerance, convergence is
  // only ever declared on an exact residual (fused exact trial or the
  // verification fallback), so the solution must not drift beyond the
  // Newton tolerances.
  spice::NewtonOptions coarse;
  coarse.bypass = true;
  coarse.bypass_reltol = 1e-3;
  coarse.bypass_abstol = 1e-6;
  spice::NewtonStats stats;
  const spice::Waveform fast = run_inverter(coarse, &stats);
  const spice::Waveform base = run_inverter(spice::NewtonOptions{});
  for (double t : {0.1e-9, 0.5e-9, 0.8e-9, 1.2e-9, 1.5e-9}) {
    EXPECT_NEAR(base.at("v(out)", t), fast.at("v(out)", t), 5e-3)
        << "t = " << t;
  }
  // Replays happened, but true evaluations still anchored every
  // accepted step (the exact-trial assemblies keep the hit rate < 1).
  EXPECT_GT(stats.bypassed_evals, 0);
  EXPECT_GT(stats.nonlinear_evals, 0);
  EXPECT_LT(stats.bypass_hit_rate(), 1.0);
}

TEST(NewtonAccel, JacobianReuseSkipsFactorizations) {
  spice::NewtonStats base_stats;
  run_inverter(spice::NewtonOptions{}, &base_stats);

  spice::NewtonOptions reuse;
  reuse.jacobian_reuse = true;
  spice::NewtonStats reuse_stats;
  const spice::Waveform fast = run_inverter(reuse, &reuse_stats);
  const spice::Waveform base = run_inverter(spice::NewtonOptions{});

  EXPECT_GT(reuse_stats.stale_jacobian_solves, 0);
  EXPECT_LT(reuse_stats.factorizations, base_stats.factorizations);
  for (double t : {0.5e-9, 1.5e-9}) {
    EXPECT_NEAR(base.at("v(out)", t), fast.at("v(out)", t), 5e-3);
  }
}

TEST(NewtonAccel, AcceleratedOperatingPointMatchesBaseline) {
  Circuit base_ckt = make_inverter();
  MnaSystem base_system(base_ckt);
  const spice::OpResult base = spice::operating_point(base_system);

  Circuit accel_ckt = make_inverter();
  MnaSystem accel_system(accel_ckt);
  spice::OpOptions options;
  options.newton.bypass = true;
  options.newton.jacobian_reuse = true;
  const spice::OpResult fast = spice::operating_point(accel_system, options);

  ASSERT_EQ(base.raw().size(), fast.raw().size());
  for (std::size_t i = 0; i < base.raw().size(); ++i) {
    EXPECT_NEAR(base.raw()[i], fast.raw()[i],
                1e-6 + 1e-6 * std::abs(base.raw()[i]))
        << "unknown " << i;
  }
}

// -------------------------------------------------- record_signals subset

TEST(TransientRecordSignals, SubsetMatchesFullRun) {
  Circuit full_ckt = make_inverter();
  MnaSystem full_system(full_ckt);
  spice::TransientOptions options;
  options.tstop = 1.5e-9;
  options.dt_initial = 1e-13;
  const spice::Waveform full = spice::transient(full_system, options);

  Circuit sub_ckt = make_inverter();
  MnaSystem sub_system(sub_ckt);
  options.record_signals = {"v(out)", "v(in)"};
  const spice::Waveform sub = spice::transient(sub_system, options);

  ASSERT_EQ(sub.num_signals(), 2u);
  EXPECT_EQ(sub.signal_names()[0], "v(out)");
  ASSERT_EQ(sub.num_samples(), full.num_samples());
  for (std::size_t k = 0; k < sub.num_samples(); ++k) {
    ASSERT_EQ(sub.times()[k], full.times()[k]);
    EXPECT_EQ(sub.sample(0, k),
              full.sample(full.signal_index("v(out)"), k));
    EXPECT_EQ(sub.sample(1, k), full.sample(full.signal_index("v(in)"), k));
  }
}

TEST(TransientRecordSignals, UnknownNameThrowsBeforeRun) {
  Circuit ckt = make_inverter();
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 1e-9;
  options.record_signals = {"v(no_such_node)"};
  EXPECT_THROW(spice::transient(system, options), std::exception);
}

// --------------------------------------------- chunked warm-start dc sweep

TEST(DcSweepChunked, ThreadCountIndependent) {
  auto make = []() { return make_inverter(); };
  auto set_vin = [](Circuit& ckt, double v) {
    ckt.find<VoltageSource>("Vin").set_wave(SourceWave::dc(v));
  };
  const std::vector<double> points = spice::linspace(0.0, 1.2, 13);

  spice::DcSweepOptions options;
  options.parallel_chunk = 5;  // 3 chunks: 5 + 5 + 3 points
  const spice::Waveform w1 =
      spice::dc_sweep_parallel(make, set_vin, points, options, 1);
  const spice::Waveform w4 =
      spice::dc_sweep_parallel(make, set_vin, points, options, 4);

  ASSERT_EQ(w1.num_samples(), points.size());
  ASSERT_EQ(w4.num_samples(), points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    for (std::size_t s = 0; s < w1.num_signals(); ++s) {
      EXPECT_DOUBLE_EQ(w1.sample(s, k), w4.sample(s, k))
          << w1.signal_names()[s] << " point " << k;
    }
  }
}

TEST(DcSweepChunked, WarmStartMatchesColdWithinTolerance) {
  // The inverter VTC has a unique solution per input, so warm-started
  // chunks must land on the same curve as cold per-point solves.
  auto make = []() { return make_inverter(); };
  auto set_vin = [](Circuit& ckt, double v) {
    ckt.find<VoltageSource>("Vin").set_wave(SourceWave::dc(v));
  };
  const std::vector<double> points = spice::linspace(0.0, 1.2, 13);

  spice::DcSweepOptions cold;
  const spice::Waveform wc =
      spice::dc_sweep_parallel(make, set_vin, points, cold, 2);
  spice::DcSweepOptions warm;
  warm.parallel_chunk = 4;
  const spice::Waveform ww =
      spice::dc_sweep_parallel(make, set_vin, points, warm, 2);

  for (std::size_t k = 0; k < points.size(); ++k) {
    EXPECT_NEAR(wc.sample(wc.signal_index("v(out)"), k),
                ww.sample(ww.signal_index("v(out)"), k), 1e-6)
        << "point " << k;
  }
}

}  // namespace
}  // namespace nemsim
