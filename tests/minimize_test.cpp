// Dedicated ddmin-minimizer coverage (src/check/minimize.cpp): the
// shrunk deck must still violate the *same* contract leg it was shrunk
// against, the result must be a fixpoint of the minimizer (re-running it
// removes nothing), and the input-validation contract must hold.
// check_test.cpp covers the happy path once; this suite pins the
// properties a debugging workflow actually leans on.
#include <gtest/gtest.h>

#include <string>

#include "nemsim/check/checker.h"
#include "nemsim/check/generator.h"
#include "nemsim/check/minimize.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/util/error.h"

namespace nemsim {
namespace {

using check::Analysis;
using check::CheckOptions;
using check::Contract;
using check::MinimizeResult;
using check::Sabotage;

CheckOptions sabotaged_options() {
  CheckOptions opts;
  opts.sabotage = Sabotage::kStaleJacobian;
  return opts;
}

// One sabotaged mismatch, shared across the suite (run_check_case is
// the expensive part; the properties below all start from it).
const check::Mismatch& sabotaged_mismatch() {
  static const check::Mismatch m = [] {
    const check::CheckCaseResult r =
        check::run_check_case(1, sabotaged_options());
    for (const check::Mismatch& cand : r.mismatches) {
      if (cand.contract == Contract::kJacobianReuse &&
          cand.analysis == Analysis::kOp) {
        return cand;
      }
    }
    ADD_FAILURE() << "stale-jacobian sabotage produced no op/jacobian-reuse "
                     "mismatch to minimize";
    return check::Mismatch{};
  }();
  return m;
}

TEST(Minimize, ShrunkDeckStillFailsTheSameContractLeg) {
  const check::Mismatch& m = sabotaged_mismatch();
  ASSERT_FALSE(m.deck.empty());
  const CheckOptions opts = sabotaged_options();

  const MinimizeResult min =
      check::minimize_deck(m.deck, m.analysis, m.contract, opts);
  EXPECT_LE(min.deck.size(), m.deck.size());

  // The defining invariant: minimization preserves the failure, on the
  // exact (analysis, contract) pair it was invoked for — not just "some
  // leg somewhere still fails".
  std::string detail;
  EXPECT_TRUE(check::deck_mismatches(min.deck, m.analysis, m.contract, opts,
                                     &detail));
  EXPECT_FALSE(detail.empty());

  // Without the sabotage the shrunk deck is an ordinary healthy circuit:
  // the minimizer kept the *trigger*, not some independent breakage.
  CheckOptions healthy;
  EXPECT_FALSE(
      check::deck_mismatches(min.deck, m.analysis, m.contract, healthy));
}

TEST(Minimize, MinimizationIsIdempotent) {
  const check::Mismatch& m = sabotaged_mismatch();
  ASSERT_FALSE(m.deck.empty());
  const CheckOptions opts = sabotaged_options();

  const MinimizeResult once =
      check::minimize_deck(m.deck, m.analysis, m.contract, opts);
  const MinimizeResult twice =
      check::minimize_deck(once.deck, m.analysis, m.contract, opts);
  // The first pass ran ddmin to a fixpoint, so the second finds nothing
  // left to take: no devices, no node merges, identical deck text.
  EXPECT_EQ(twice.devices_removed, 0u);
  EXPECT_EQ(twice.nodes_merged, 0u);
  EXPECT_EQ(twice.deck, once.deck);
}

TEST(Minimize, RefusesADeckThatDoesNotMismatch) {
  spice::Circuit ckt = check::generate_circuit(2);
  const std::string deck = spice::netlist_string(ckt, "healthy");
  EXPECT_THROW(check::minimize_deck(deck, Analysis::kOp,
                                    Contract::kJacobianReuse, CheckOptions{}),
               InvalidArgument);
}

TEST(Minimize, RefusesTheNonReplayableHierarchyContract) {
  const check::Mismatch& m = sabotaged_mismatch();
  ASSERT_FALSE(m.deck.empty());
  // kHierarchy needs the generator's wrapped twin; a deck alone cannot
  // replay it, so the minimizer must refuse rather than "succeed" by
  // deleting everything against a vacuously-false predicate.
  EXPECT_THROW(check::minimize_deck(m.deck, m.analysis, Contract::kHierarchy,
                                    sabotaged_options()),
               InvalidArgument);
}

}  // namespace
}  // namespace nemsim
