// Every circuit the repo ships — the paper's experiment builders, the
// standard-cell helpers, and the quickstart example topology — must lint
// clean: zero errors, zero warnings (hints are allowed; the SRAM cell
// intentionally uses the paper's "AL"/"NL"/"PL" device names).
#include <gtest/gtest.h>

#include <string>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/gates.h"
#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/lint.h"
#include "nemsim/tech/cards.h"

namespace nemsim {
namespace {

void expect_clean(spice::Circuit& ckt, const std::string& label) {
  lint::LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(r.clean()) << label << ":\n" << r.summary();
}

TEST(LintSweep, DynamicOrGates) {
  for (bool hybrid : {false, true}) {
    for (int fanin : {2, 8, 16}) {
      core::DynamicOrConfig config;
      config.hybrid = hybrid;
      config.fanin = fanin;
      core::DynamicOrGate gate = core::build_dynamic_or(config);
      expect_clean(gate.ckt(),
                   std::string(hybrid ? "hybrid" : "cmos") + " dynamic OR, " +
                       "fanin " + std::to_string(fanin));
    }
  }
}

TEST(LintSweep, SramCells) {
  for (auto kind :
       {core::SramKind::kConventional, core::SramKind::kDualVt,
        core::SramKind::kAsymmetric, core::SramKind::kHybrid,
        core::SramKind::kHybridPullupOnly}) {
    for (bool drive : {true, false}) {
      core::SramConfig config;
      config.kind = kind;
      core::SramBenchMode mode;
      mode.drive_bitlines = drive;
      core::SramCell cell = core::build_sram_cell(config, mode);
      expect_clean(cell.ckt(), std::string(core::sram_kind_name(kind)) +
                                   (drive ? " (driven)" : " (standby)"));
    }
  }
}

TEST(LintSweep, StandardCellHelpers) {
  spice::Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  ckt.add<devices::VoltageSource>("Vdd", vdd, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::VoltageSource>("Va", a, ckt.gnd(),
                                  devices::SourceWave::dc(0.0));
  ckt.add<devices::VoltageSource>("Vb", b, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  core::add_nand2(ckt, "ND", a, b, ckt.node("nand_out"), vdd);
  core::add_nor2(ckt, "NR", a, b, ckt.node("nor_out"), vdd);
  core::add_inverter_chain(ckt, "CH", ckt.node("nand_out"), vdd, ckt.gnd(),
                           4);
  core::add_fanout_load(ckt, "FO", ckt.node("nor_out"), vdd, 3);
  expect_clean(ckt, "nand2 + nor2 + chain + fanout");
}

TEST(LintSweep, QuickstartTopology) {
  // The examples/quickstart.cpp circuit: inverter driving an RC wire.
  spice::Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  spice::NodeId load = ckt.node("load");
  ckt.add<devices::VoltageSource>("Vdd", vdd, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::VoltageSource>(
      "Vin", in, ckt.gnd(),
      devices::SourceWave::pulse(0.0, 1.2, 0.2e-9, 20e-12, 20e-12, 1e-9));
  ckt.add<devices::Mosfet>("Mp", out, in, vdd, devices::MosPolarity::kPmos,
                           tech::pmos_90nm(), 0.4e-6, 1e-7);
  ckt.add<devices::Mosfet>("Mn", out, in, ckt.gnd(),
                           devices::MosPolarity::kNmos, tech::nmos_90nm(),
                           0.2e-6, 1e-7);
  ckt.add<devices::Resistor>("Rw", out, load, 500.0);
  ckt.add<devices::Capacitor>("Cw", load, ckt.gnd(), 5e-15);
  expect_clean(ckt, "quickstart inverter + RC wire");
}

TEST(LintSweep, ShippedFixtureDeckIsClean) {
  // The clean CLI fixture deck must agree with the library's verdict.
  spice::Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  ckt.add<devices::VoltageSource>("V1", in, ckt.gnd(),
                                  devices::SourceWave::dc(1.2));
  ckt.add<devices::Resistor>("R1", in, mid, 1e3);
  ckt.add<devices::Resistor>("R2", mid, ckt.gnd(), 3e3);
  ckt.add<devices::Capacitor>("C1", mid, ckt.gnd(), 10e-15);
  expect_clean(ckt, "clean_rc fixture");
}

}  // namespace
}  // namespace nemsim
