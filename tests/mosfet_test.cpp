// MOSFET compact-model tests: calibration against Table 1, smoothness,
// symmetry, and a full CMOS inverter in the simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::MosParams;
using devices::Mosfet;
using devices::MosPolarity;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

Mosfet make_nmos(double w = 1.0_um) {
  return Mosfet("M", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
                MosPolarity::kNmos, tech::nmos_90nm(), w, 0.1_um);
}

// ----------------------------------------------------- model properties

TEST(MosfetModel, Table1IonCalibration) {
  Mosfet m = make_nmos();
  const double ion = m.drain_current(1.2, 1.2);
  EXPECT_NEAR(ion, 1110e-6, 0.10 * 1110e-6);  // 1110 uA/um +- 10 %
}

TEST(MosfetModel, Table1IoffCalibration) {
  Mosfet m = make_nmos();
  const double ioff = m.drain_current(0.0, 1.2);
  EXPECT_NEAR(ioff, 50e-9, 0.25 * 50e-9);  // 50 nA/um +- 25 %
}

TEST(MosfetModel, CurrentScalesWithWidth) {
  Mosfet m1 = make_nmos(1.0_um);
  Mosfet m2 = make_nmos(2.0_um);
  EXPECT_NEAR(m2.drain_current(1.2, 1.2) / m1.drain_current(1.2, 1.2), 2.0,
              1e-9);
}

TEST(MosfetModel, MonotonicInVgs) {
  Mosfet m = make_nmos();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
    const double id = m.drain_current(vgs, 1.2);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(MosfetModel, MonotonicInVds) {
  Mosfet m = make_nmos();
  double prev = -1.0;
  for (double vds = 0.0; vds <= 1.2; vds += 0.05) {
    const double id = m.drain_current(1.2, vds);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(MosfetModel, ZeroVdsZeroCurrent) {
  Mosfet m = make_nmos();
  EXPECT_NEAR(m.drain_current(1.2, 0.0), 0.0, 1e-12);
}

TEST(MosfetModel, SymmetricThroughOrigin) {
  // Gummel symmetry: mirroring the terminal voltages (g=1.0, d=0.1, s=0)
  // to (g=1.0, d=0, s=0.1) must exactly negate the current.  In the
  // source-referenced API the mirror of (vgs=1.0, vds=0.1) is
  // (vgs=0.9, vds=-0.1).
  Mosfet m = make_nmos();
  const double fwd = m.drain_current(1.0, 0.1);
  const double rev = m.drain_current(0.9, -0.1);
  EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * fwd);
  // ... and tiny vds continuity through the swap point.
  const double eps = m.drain_current(1.0, 1e-9);
  EXPECT_NEAR(eps, 0.0, 1e-9);
}

TEST(MosfetModel, VthShiftReducesCurrent) {
  Mosfet m = make_nmos();
  const double nominal = m.drain_current(0.3, 1.2);
  m.set_vth_shift(0.05);
  EXPECT_LT(m.drain_current(0.3, 1.2), nominal);
  m.set_vth_shift(-0.05);
  EXPECT_GT(m.drain_current(0.3, 1.2), nominal);
}

TEST(MosfetModel, SubthresholdSlopeFactor) {
  // Deep in weak inversion Id ~ exp(Vgs/(n vt)): the slope matches the
  // card's n.  (Near Vth the EKV interpolation deviates by design, so
  // measure well below threshold.)
  Mosfet m = make_nmos();
  const double i1 = m.drain_current(0.00, 1.2);
  const double i2 = m.drain_current(0.05, 1.2);
  const double n_measured =
      0.05 / (std::log(i2 / i1) * phys::thermal_voltage(300.0));
  EXPECT_NEAR(n_measured, tech::nmos_90nm().n, 0.15);
}

// ------------------------------------------------- characterization runs

TEST(MosfetCharacterize, NmosMeetsTable1ViaSimulator) {
  tech::DeviceIV iv = tech::characterize_mosfet(
      tech::nmos_90nm(), MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  EXPECT_NEAR(iv.ion, 1110e-6, 0.10 * 1110e-6);
  EXPECT_NEAR(iv.ioff, 50e-9, 0.25 * 50e-9);
  // Swing: n * vt * ln(10) ~ 83 mV/dec, and never below 60.
  EXPECT_GT(iv.swing_mv_dec, 60.0);
  EXPECT_LT(iv.swing_mv_dec, 100.0);
}

TEST(MosfetCharacterize, PmosConductsWithNegativeBias) {
  tech::DeviceIV iv = tech::characterize_mosfet(
      tech::pmos_90nm(), MosPolarity::kPmos, 1.0_um, 0.1_um, 1.2);
  EXPECT_GT(iv.ion, 300e-6);   // holes: roughly half the NMOS drive
  EXPECT_LT(iv.ion, 800e-6);
  EXPECT_LT(iv.ioff, 60e-9);
}

TEST(MosfetCharacterize, HighVtCutsLeakageByOrderOfMagnitude) {
  tech::DeviceIV nom = tech::characterize_mosfet(
      tech::nmos_90nm(), MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  tech::DeviceIV hvt = tech::characterize_mosfet(
      tech::nmos_90nm_hvt(), MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  EXPECT_LT(hvt.ioff, nom.ioff / 10.0);
  EXPECT_LT(hvt.ion, nom.ion);  // and it is slower
}

// --------------------------------------------------------- inverter runs

struct InverterFixture {
  Circuit ckt;
  MnaSystem* system = nullptr;

  InverterFixture(double wp, double wn) {
    spice::NodeId vdd = ckt.node("vdd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
    ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.0));
    ckt.add<Mosfet>("Mp", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                    wp, 0.1_um);
    ckt.add<Mosfet>("Mn", out, in, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), wn, 0.1_um);
  }
};

TEST(Inverter, RailToRailTransfer) {
  InverterFixture f(0.4_um, 0.2_um);
  MnaSystem system(f.ckt);
  auto& vin = f.ckt.find<VoltageSource>("Vin");
  auto points = spice::linspace(0.0, 1.2, 61);
  spice::Waveform vtc = spice::dc_sweep(
      system, [&](double v) { vin.set_dc(v); }, points);
  EXPECT_GT(vtc.at("v(out)", 0.0), 1.19);   // output high at input low
  EXPECT_LT(vtc.at("v(out)", 1.2), 0.01);   // output low at input high
  // Switching threshold in the middle third of the supply.
  const double vm = spice::cross_time(vtc, "v(out)", 0.6, spice::Edge::kFalling);
  EXPECT_GT(vm, 0.4);
  EXPECT_LT(vm, 0.8);
}

TEST(Inverter, TransientPropagationDelayReasonable) {
  InverterFixture f(0.4_um, 0.2_um);
  // Drive with a pulse and load with a second inverter's worth of cap.
  auto& vin = f.ckt.find<VoltageSource>("Vin");
  vin.set_wave(SourceWave::pulse(0.0, 1.2, 0.2_ns, 20.0_ps, 20.0_ps, 1.0_ns));
  f.ckt.add<devices::Capacitor>("CL", f.ckt.find_node("out"), f.ckt.gnd(),
                                2.0_fF);
  MnaSystem system(f.ckt);
  spice::TransientOptions options;
  options.tstop = 2.5_ns;
  spice::Waveform wave = spice::transient(system, options);

  const double tphl = spice::propagation_delay(
      wave, "v(in)", 0.6, spice::Edge::kRising, "v(out)", 0.6,
      spice::Edge::kFalling);
  EXPECT_GT(tphl, 1.0_ps);
  EXPECT_LT(tphl, 100.0_ps);  // 90 nm inverter: tens of ps at this load
  // Output must eventually swing back high after the input falls.
  EXPECT_GT(spice::final_value(wave, "v(out)"), 1.1);
}

TEST(Inverter, LeakagePowerWhenIdle) {
  InverterFixture f(0.4_um, 0.2_um);
  MnaSystem system(f.ckt);
  spice::OpResult op = spice::operating_point(system);
  // Input low: NMOS leaks; static current of the order of Ioff * W.
  const double i_leak = std::abs(op.value("i(Vdd)"));
  EXPECT_GT(i_leak, 1e-10);
  EXPECT_LT(i_leak, 1e-6);
}

}  // namespace
}  // namespace nemsim
