// Type-bucketed kernel lanes: plan construction, scatter-map
// correctness against the unknown table, pattern-epoch tracking of the
// CSR slot tables, the off-by-default bitwise contract, and the
// kernels-on reltol contract against the virtual-dispatch baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/kernels.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"

namespace nemsim {
namespace {

using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::KernelLane;
using spice::KernelPlan;
using spice::MnaSystem;
using spice::kKernelAbsent;

/// Hybrid inverter: every nonlinear device family plus passives and a
/// source — one lane per concrete type, no leftovers.
Circuit make_hybrid_inverter() {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>(
      "Vin", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.2e-9, 50e-12, 50e-12, 1.5e-9, 4e-9));
  ckt.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4e-6, 1e-7);
  ckt.add<Nemfet>("XN", out, in, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1e-6);
  ckt.add<Capacitor>("Cl", out, ckt.gnd(), 2e-15);
  ckt.add<Resistor>("Rl", out, ckt.gnd(), 1e9);
  return ckt;
}

const KernelLane* find_lane(const KernelPlan& plan, const std::string& bucket) {
  for (const KernelLane& lane : plan.lanes) {
    if (lane.bucket == bucket) return &lane;
  }
  return nullptr;
}

void expect_identical(const spice::Waveform& a, const spice::Waveform& b) {
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (std::size_t k = 0; k < a.num_samples(); ++k) {
    ASSERT_EQ(a.times()[k], b.times()[k]) << "sample " << k;
    for (std::size_t s = 0; s < a.num_signals(); ++s) {
      ASSERT_EQ(a.sample(s, k), b.sample(s, k))
          << a.signal_names()[s] << " sample " << k;
    }
  }
}

// ---------------------------------------------------------- lane building

TEST(KernelPlan, BucketsEveryInTreeDeviceType) {
  Circuit ckt = make_hybrid_inverter();
  MnaSystem system(ckt);
  system.configure_kernels(true);
  ASSERT_NE(system.kernel_plan(), nullptr);
  const KernelPlan& plan = *system.kernel_plan();

  // Every in-tree device type has a descriptor: nothing falls through to
  // the per-device virtual path.
  EXPECT_TRUE(plan.leftover_linear.empty());
  EXPECT_TRUE(plan.leftover_nonlinear.empty());

  const KernelLane* vsource = find_lane(plan, "vsource");
  ASSERT_NE(vsource, nullptr);
  EXPECT_EQ(vsource->devices.size(), 2u);
  EXPECT_TRUE(vsource->linear);

  const KernelLane* mosfet = find_lane(plan, "mosfet");
  ASSERT_NE(mosfet, nullptr);
  EXPECT_EQ(mosfet->devices.size(), 1u);
  EXPECT_FALSE(mosfet->linear);
  EXPECT_TRUE(mosfet->bypassable);

  const KernelLane* nemfet = find_lane(plan, "nemfet");
  ASSERT_NE(nemfet, nullptr);
  EXPECT_EQ(nemfet->roles, 5);

  EXPECT_NE(find_lane(plan, "capacitor"), nullptr);
  EXPECT_NE(find_lane(plan, "resistor"), nullptr);

  // Lane membership covers the whole device list exactly once.
  std::size_t lane_devices = 0;
  for (const KernelLane& lane : plan.lanes) lane_devices += lane.devices.size();
  EXPECT_EQ(lane_devices, 6u);
}

TEST(KernelPlan, ScatterMapMatchesUnknownTable) {
  // Divider: V1 drives "in"; R1 in-out, R2 out-gnd.  Known unknown
  // bindings make the rows and dense slot offsets directly checkable.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Resistor>("R2", out, ckt.gnd(), 2e3);
  MnaSystem system(ckt);
  system.configure_kernels(true);
  const KernelPlan& plan = *system.kernel_plan();
  const std::size_t n = system.num_unknowns();

  const std::size_t u_in = system.unknown_of(in).index;
  const std::size_t u_out = system.unknown_of(out).index;

  const KernelLane* lane = find_lane(plan, "resistor");
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->devices.size(), 2u);
  ASSERT_EQ(lane->roles, 2);

  // Device order within a lane is circuit registration order.
  EXPECT_EQ(lane->devices[0]->name(), "R1");
  EXPECT_EQ(lane->devices[1]->name(), "R2");

  // R1 rows: role 0 = in, role 1 = out.
  EXPECT_EQ(lane->rows[0], u_in);
  EXPECT_EQ(lane->rows[1], u_out);
  // R2 rows: role 0 = out, role 1 = ground (absent).
  EXPECT_EQ(lane->rows[2], u_out);
  EXPECT_EQ(lane->rows[3], kKernelAbsent);

  // Dense slots are row-major offsets; cells touching ground are absent.
  const std::size_t rr = 4;  // roles * roles
  EXPECT_EQ(lane->dense_slots[0 * rr + 0], u_in * n + u_in);
  EXPECT_EQ(lane->dense_slots[0 * rr + 1], u_in * n + u_out);
  EXPECT_EQ(lane->dense_slots[0 * rr + 2], u_out * n + u_in);
  EXPECT_EQ(lane->dense_slots[0 * rr + 3], u_out * n + u_out);
  EXPECT_EQ(lane->dense_slots[1 * rr + 0], u_out * n + u_out);
  EXPECT_EQ(lane->dense_slots[1 * rr + 1], kKernelAbsent);
  EXPECT_EQ(lane->dense_slots[1 * rr + 2], kKernelAbsent);
  EXPECT_EQ(lane->dense_slots[1 * rr + 3], kKernelAbsent);
}

TEST(KernelPlan, SparseSlotsTrackThePatternEpoch) {
  Circuit ckt = make_hybrid_inverter();
  MnaSystem system(ckt);

  // Build the pattern first (without kernels), then enable: the plan's
  // declared cells may genuinely extend the recorded pattern (e.g. the
  // MOSFET's swapped-orientation cells), which must go through a proper
  // epoch bump, and the first kernels-on sparse solve must resolve the
  // slot tables against the final epoch.
  spice::OpOptions plain;
  plain.newton.solver = spice::JacobianSolver::kSparse;
  (void)spice::operating_point(system, plain);
  const std::uint64_t epoch_before = system.jacobian_pattern_epoch();

  system.configure_kernels(true);
  ASSERT_NE(system.kernel_plan(), nullptr);
  EXPECT_GE(system.jacobian_pattern_epoch(), epoch_before);
  // Slots are resolved lazily at the first kernels-on sparse assembly.
  EXPECT_EQ(system.kernel_plan()->sparse_epoch, KernelPlan::kNoEpoch);

  spice::OpOptions with;
  with.newton.solver = spice::JacobianSolver::kSparse;
  with.newton.kernels = true;
  (void)spice::operating_point(system, with);
  EXPECT_EQ(system.kernel_plan()->sparse_epoch,
            system.jacobian_pattern_epoch());

  // Resolved slots all point inside the CSR value array.
  const linalg::CsrMatrix csr = system.make_sparse_jacobian();
  for (const KernelLane& lane : system.kernel_plan()->lanes) {
    for (std::size_t s : lane.sparse_slots) {
      if (s == kKernelAbsent) continue;
      EXPECT_LT(s, csr.values().size());
    }
  }
}

// ------------------------------------------------------ off-path contract

TEST(KernelContract, OffRunsAreBitwiseUnchanged) {
  auto run = [](const spice::NewtonOptions& newton) {
    Circuit ckt = make_hybrid_inverter();
    MnaSystem system(ckt);
    spice::TransientOptions o;
    o.newton = newton;
    o.tstop = 1.5e-9;
    o.dt_initial = 1e-13;
    return spice::transient(system, o);
  };
  const spice::Waveform a = run(spice::NewtonOptions{});
  spice::NewtonOptions off;
  off.kernels = false;
  const spice::Waveform b = run(off);
  expect_identical(a, b);
}

TEST(KernelContract, OnThenOffLeavesNoStateBehind) {
  // A kernels-on run followed by a default run on the SAME system must
  // reproduce a fresh default run bitwise.
  Circuit ckt = make_hybrid_inverter();
  MnaSystem system(ckt);
  spice::TransientOptions on;
  on.tstop = 1.5e-9;
  on.dt_initial = 1e-13;
  on.newton.kernels = true;
  spice::transient(system, on);

  spice::TransientOptions off = on;
  off.newton = spice::NewtonOptions{};
  const spice::Waveform after = spice::transient(system, off);

  Circuit fresh_ckt = make_hybrid_inverter();
  MnaSystem fresh_system(fresh_ckt);
  const spice::Waveform fresh = spice::transient(fresh_system, off);
  expect_identical(after, fresh);
}

// ------------------------------------------------------- on-path contract

TEST(KernelContract, OperatingPointMatchesVirtualPath) {
  for (spice::JacobianSolver solver :
       {spice::JacobianSolver::kDense, spice::JacobianSolver::kSparse}) {
    Circuit base_ckt = make_hybrid_inverter();
    MnaSystem base_system(base_ckt);
    spice::OpOptions base_opts;
    base_opts.newton.solver = solver;
    const spice::OpResult base = spice::operating_point(base_system, base_opts);

    Circuit kern_ckt = make_hybrid_inverter();
    MnaSystem kern_system(kern_ckt);
    spice::OpOptions kern_opts = base_opts;
    kern_opts.newton.kernels = true;
    const spice::OpResult fast =
        spice::operating_point(kern_system, kern_opts);

    ASSERT_EQ(base.raw().size(), fast.raw().size());
    for (std::size_t i = 0; i < base.raw().size(); ++i) {
      EXPECT_NEAR(base.raw()[i], fast.raw()[i],
                  1e-6 + 1e-6 * std::abs(base.raw()[i]))
          << "unknown " << i << " solver " << static_cast<int>(solver);
    }
  }
}

TEST(KernelContract, TransientMatchesVirtualPathAndCountsLanes) {
  auto run = [](bool kernels, spice::NewtonStats* stats) {
    Circuit ckt = make_hybrid_inverter();
    MnaSystem system(ckt);
    spice::TransientOptions o;
    o.tstop = 1.5e-9;
    o.dt_initial = 1e-13;
    o.newton.kernels = kernels;
    o.newton_stats = stats;
    return spice::transient(system, o);
  };
  spice::NewtonStats base_stats, kern_stats;
  const spice::Waveform base = run(false, &base_stats);
  const spice::Waveform fast = run(true, &kern_stats);
  for (double t : {0.1e-9, 0.3e-9, 0.6e-9, 1.0e-9, 1.5e-9}) {
    EXPECT_NEAR(base.at("v(out)", t), fast.at("v(out)", t), 5e-3)
        << "t = " << t;
  }

  // Per-bucket counters: the kernels run evaluated every lane; the
  // baseline run reports none.
  EXPECT_TRUE(base_stats.kernel_lane_evals.empty());
  ASSERT_FALSE(kern_stats.kernel_lane_evals.empty());
  for (const char* bucket : {"mosfet", "nemfet", "capacitor", "vsource"}) {
    const auto it = std::find_if(
        kern_stats.kernel_lane_evals.begin(), kern_stats.kernel_lane_evals.end(),
        [&](const auto& e) { return e.first == bucket; });
    ASSERT_NE(it, kern_stats.kernel_lane_evals.end()) << bucket;
    EXPECT_GT(it->second, 0u) << bucket;
  }
}

TEST(KernelContract, ComposesWithBypassAndReuse) {
  auto run = [](const spice::NewtonOptions& newton) {
    Circuit ckt = make_hybrid_inverter();
    MnaSystem system(ckt);
    spice::TransientOptions o;
    o.tstop = 1.5e-9;
    o.dt_initial = 1e-13;
    o.newton = newton;
    return spice::transient(system, o);
  };
  const spice::Waveform base = run(spice::NewtonOptions{});
  spice::NewtonOptions all;
  all.kernels = true;
  all.bypass = true;
  all.jacobian_reuse = true;
  const spice::Waveform fast = run(all);
  for (double t : {0.1e-9, 0.3e-9, 0.6e-9, 1.0e-9, 1.5e-9}) {
    EXPECT_NEAR(base.at("v(out)", t), fast.at("v(out)", t), 5e-3)
        << "t = " << t;
  }
}

}  // namespace
}  // namespace nemsim
