// Integration tests: the paper's headline claims at full experiment
// scale (these are the same configurations the benches run, held to the
// qualitative assertions the paper makes).
#include <gtest/gtest.h>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/metrics.h"
#include "nemsim/core/power_gating.h"
#include "nemsim/core/sram.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using namespace nemsim::core;

// ---- Abstract claim 1: Table 1 calibration end-to-end -----------------

TEST(Headline, Table1DevicesWithinTolerance) {
  tech::DeviceIV cmos = tech::characterize_mosfet(
      tech::nmos_90nm(), devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
  tech::NemsIV nems = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, 1.2);
  EXPECT_NEAR(cmos.ion, 1110e-6, 0.1 * 1110e-6);
  EXPECT_NEAR(cmos.ioff, 50e-9, 0.25 * 50e-9);
  EXPECT_NEAR(nems.iv.ion, 330e-6, 0.1 * 330e-6);
  EXPECT_NEAR(nems.iv.ioff, 110e-12, 0.25 * 110e-12);
}

// ---- Abstract claim 2: hybrid OR, 60-80 % lower switching power with
// minor delay penalty at fan-in 8 ---------------------------------------

TEST(Headline, HybridOrPowerAndDelayAtFanin8) {
  DynamicOrConfig c;
  c.fanin = 8;
  c.fanout = 3;
  c.hybrid = false;
  DynamicOrGate cmos = build_dynamic_or(c);
  DynamicOrMetrics mc = measure_dynamic_or(cmos);
  c.hybrid = true;
  DynamicOrGate hybrid = build_dynamic_or(c);
  DynamicOrMetrics mh = measure_dynamic_or(hybrid);

  // Power: at least 40 % saving (paper: 60-80 %).
  EXPECT_LT(mh.switching_power, 0.6 * mc.switching_power);
  // Delay: hybrid slower, but by less than ~50 % ("minor penalty").
  EXPECT_GT(mh.worst_case_delay, mc.worst_case_delay);
  EXPECT_LT(mh.worst_case_delay, 1.5 * mc.worst_case_delay);
  // Leakage: "almost zero" - at least 3x below (common inverter/precharge
  // leakage remains in both).
  EXPECT_LT(mh.leakage_power, 0.35 * mc.leakage_power);
}

// ---- Abstract claim 3: crossover beyond fan-in ~12 --------------------

TEST(Headline, HybridWinsBothMetricsAtHighFanin) {
  for (int fanin : {12, 16}) {
    DynamicOrConfig c;
    c.fanin = fanin;
    c.fanout = 3;
    c.hybrid = false;
    DynamicOrGate cmos = build_dynamic_or(c);
    DynamicOrMetrics mc = measure_dynamic_or(cmos);
    c.hybrid = true;
    DynamicOrGate hybrid = build_dynamic_or(c);
    DynamicOrMetrics mh = measure_dynamic_or(hybrid);
    EXPECT_LT(mh.worst_case_delay, mc.worst_case_delay) << "fanin " << fanin;
    EXPECT_LT(mh.switching_power, mc.switching_power) << "fanin " << fanin;
  }
}

TEST(Headline, CmosStillWinsDelayAtLowFanin) {
  DynamicOrConfig c;
  c.fanin = 4;
  c.fanout = 3;
  c.hybrid = false;
  DynamicOrGate cmos = build_dynamic_or(c);
  c.hybrid = true;
  DynamicOrGate hybrid = build_dynamic_or(c);
  EXPECT_LT(measure_worst_case_delay(cmos), measure_worst_case_delay(hybrid));
}

// ---- Abstract claim 4: Equation 1 PDP dominance ------------------------

TEST(Headline, HybridPdpBelowCmosAcrossActivity) {
  DynamicOrConfig c;
  c.fanin = 8;
  c.fanout = 1;
  c.hybrid = false;
  DynamicOrGate cmos = build_dynamic_or(c);
  DynamicOrMetrics mc = measure_dynamic_or(cmos);
  c.hybrid = true;
  DynamicOrGate hybrid = build_dynamic_or(c);
  DynamicOrMetrics mh = measure_dynamic_or(hybrid);
  for (double alpha = 0.0; alpha <= 1.0001; alpha += 0.25) {
    const double pd_c = power_delay_product(alpha, mc.leakage_power,
                                            mc.switching_power,
                                            mc.worst_case_delay);
    const double pd_h = power_delay_product(alpha, mh.leakage_power,
                                            mh.switching_power,
                                            mh.worst_case_delay);
    EXPECT_LT(pd_h, pd_c) << "alpha=" << alpha;
  }
}

// ---- Abstract claim 5: hybrid SRAM ~8x lower leakage, minor SNM and
// latency cost ----------------------------------------------------------

TEST(Headline, HybridSramTradeoffs) {
  SramConfig conv;
  SramConfig hyb;
  hyb.kind = SramKind::kHybrid;

  const double snm_conv = measure_butterfly(conv, 61).snm;
  const double snm_hyb = measure_butterfly(hyb, 61).snm;
  EXPECT_NEAR(snm_hyb / snm_conv, 0.86, 0.08);  // "14 % lower"

  const double lat_conv = measure_read_latency(conv);
  const double lat_hyb = measure_read_latency(hyb);
  EXPECT_GT(lat_hyb, lat_conv);
  EXPECT_LT(lat_hyb, 2.0 * lat_conv);

  const double leak_conv = measure_standby_leakage(conv);
  const double leak_hyb = measure_standby_leakage(hyb);
  EXPECT_GT(leak_conv / leak_hyb, 8.0);  // "almost 8X lower" (or better)
}

// ---- Abstract claim 6: NEMS sleep transistors --------------------------

TEST(Headline, NemsSleepTransistorClaims) {
  SleepSweepConfig cmos;
  SleepSweepConfig nems;
  nems.device = SleepDeviceType::kNems;
  const std::vector<double> areas = {1.0, 20.0};
  auto pc = sweep_sleep_transistor(cmos, areas);
  auto pn = sweep_sleep_transistor(nems, areas);
  // Leakage: two to three orders of magnitude lower (pinned by Table 1's
  // Ioff ratio of ~455x).
  EXPECT_GT(pc[0].ioff / pn[0].ioff, 100.0);
  // Ron gap shrinks with area so the penalty can be sized away.
  EXPECT_LT(pn[1].ron - pc[1].ron, 0.1 * (pn[0].ron - pc[0].ron));
}

}  // namespace
}  // namespace nemsim
