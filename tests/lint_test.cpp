// nemsim::lint unit tests: one positive and one negative case per rule
// class, plus the analysis-gate contract (off / warn / strict).
#include <gtest/gtest.h>

#include <string>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"

namespace nemsim {
namespace {

using devices::Capacitor;
using devices::CurrentSource;
using devices::Inductor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::Vcvs;
using devices::VoltageSource;
using lint::LintReport;
using lint::LintSeverity;

// Does the report contain a finding of `rule` whose message mentions
// `needle`?  Rules are asserted through this so tests pin both the rule
// id and the presence of the offending device/node *name* in the text.
bool has(const LintReport& r, const std::string& rule,
         const std::string& needle) {
  for (const auto& f : r.findings) {
    if (f.rule == rule && f.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& f : r.findings) n += (f.rule == rule) ? 1 : 0;
  return n;
}

// V - R divider with a load capacitor: structurally impeccable.
void build_divider(spice::Circuit& ckt) {
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, ckt.gnd(), 3e3);
  ckt.add<Capacitor>("C1", mid, ckt.gnd(), 10e-15);
}

// ------------------------------------------------------------ clean case

TEST(Lint, CleanCircuitHasNoFindings) {
  spice::Circuit ckt;
  build_divider(ckt);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(r.findings.empty()) << r.summary();
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.warnings, 0u);
  EXPECT_EQ(r.hints, 0u);
}

// --------------------------------------------------------- floating-node

TEST(Lint, FloatingIslandIsAnError) {
  spice::Circuit ckt;
  build_divider(ckt);
  // R3 connects two nodes that touch nothing else: a two-node island.
  ckt.add<Resistor>("R3", ckt.node("a"), ckt.node("b"), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has(r, "floating-node", "'a'")) << r.summary();
  EXPECT_TRUE(has(r, "floating-node", "'b'")) << r.summary();
  // The well-connected nodes must NOT be flagged.
  EXPECT_FALSE(has(r, "floating-node", "'mid'"));
  EXPECT_FALSE(has(r, "floating-node", "'in'"));
}

TEST(Lint, SensingOnlyControlNodesFloat) {
  spice::Circuit ckt;
  build_divider(ckt);
  // VCVS control terminals sense but do not stamp; with nothing else
  // attached the control nodes are structurally undetermined.
  ckt.add<Vcvs>("E1", ckt.node("e"), ckt.gnd(), ckt.node("cp"),
                ckt.node("cn"), 2.0);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "floating-node", "'cp'")) << r.summary();
  EXPECT_TRUE(has(r, "floating-node", "'cn'")) << r.summary();
  EXPECT_TRUE(has(r, "floating-node", "sensing"));
}

// ---------------------------------------------------------- voltage-loop

TEST(Lint, ParallelSourcesFormVoltageLoop) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<VoltageSource>("V2", a, ckt.gnd(), SourceWave::dc(2.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(r.has_errors());
  // The loop is attributed to the branch that closed it.
  EXPECT_TRUE(has(r, "voltage-loop", "'V2'")) << r.summary();
  // The conflicting values are named explicitly as well.
  EXPECT_TRUE(has(r, "parallel-voltage-sources", "'V1'")) << r.summary();
  EXPECT_TRUE(has(r, "parallel-voltage-sources", "'V2'"));
  // And the rank check independently sees the singularity.
  EXPECT_GE(count_rule(r, "structural-rank"), 1u);
}

TEST(Lint, InductorClosesDcVoltageLoop) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Inductor>("L1", a, ckt.gnd(), 1e-9);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "voltage-loop", "'L1'")) << r.summary();
}

TEST(Lint, SeriesSourcesAreNotALoop) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<VoltageSource>("V2", b, a, SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", b, ckt.gnd(), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "voltage-loop"), 0u) << r.summary();
  EXPECT_EQ(count_rule(r, "parallel-voltage-sources"), 0u);
  EXPECT_TRUE(r.clean());
}

// -------------------------------------------------------- current-cutset

TEST(Lint, CurrentSourceIntoDeadEndIsACutset) {
  spice::Circuit ckt;
  build_divider(ckt);
  ckt.add<CurrentSource>("I1", ckt.node("x"), ckt.gnd(),
                         SourceWave::dc(1e-6));
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has(r, "current-cutset", "'x'")) << r.summary();
}

TEST(Lint, CurrentSourceWithShuntIsFine) {
  spice::Circuit ckt;
  spice::NodeId x = ckt.node("x");
  ckt.add<CurrentSource>("I1", x, ckt.gnd(), SourceWave::dc(1e-6));
  ckt.add<Resistor>("R1", x, ckt.gnd(), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "current-cutset"), 0u) << r.summary();
  EXPECT_TRUE(r.clean());
}

// -------------------------------------------------- capacitive-only-node

TEST(Lint, CapacitiveOnlyNodeWarns) {
  spice::Circuit ckt;
  build_divider(ckt);
  ckt.add<Capacitor>("C2", ckt.node("x"), ckt.node("in"), 1e-15);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "capacitive-only-node", "'x'")) << r.summary();
  // It is a warning (gmin rescues the DC point), not an error.
  EXPECT_EQ(r.errors, 0u);
}

TEST(Lint, CapacitorWithBleedResistorIsFine) {
  spice::Circuit ckt;
  build_divider(ckt);
  spice::NodeId x = ckt.node("x");
  ckt.add<Capacitor>("C2", x, ckt.node("in"), 1e-15);
  ckt.add<Resistor>("R3", x, ckt.gnd(), 1e6);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "capacitive-only-node"), 0u) << r.summary();
  EXPECT_TRUE(r.clean());
}

// --------------------------------------------------------- dangling-node

TEST(Lint, SingleTerminalNodeDangles) {
  spice::Circuit ckt;
  build_divider(ckt);
  // x reaches ground through R3-"in", so it does not float; it merely
  // has exactly one terminal on it.
  ckt.add<Resistor>("R3", ckt.node("in"), ckt.node("x"), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "dangling-node", "'x'")) << r.summary();
  EXPECT_EQ(r.errors, 0u);
}

TEST(Lint, TwoTerminalNodesDoNotDangle) {
  spice::Circuit ckt;
  build_divider(ckt);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "dangling-node"), 0u) << r.summary();
}

// ------------------------------------------------- nonphysical-parameter

TEST(Lint, NonphysicalParametersWarn) {
  spice::Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", in, out, 1e13);          // 10 TOhm
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 2.0);   // 2 farads on-chip
  ckt.add<Resistor>("R2", out, ckt.gnd(), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_GE(count_rule(r, "nonphysical-parameter"), 2u) << r.summary();
  // The finding is anchored to the offending device.
  bool r1 = false, c1 = false;
  for (const auto& f : r.findings) {
    if (f.rule != "nonphysical-parameter") continue;
    r1 = r1 || f.subject == "R1";
    c1 = c1 || f.subject == "C1";
  }
  EXPECT_TRUE(r1) << r.summary();
  EXPECT_TRUE(c1) << r.summary();
  EXPECT_EQ(r.errors, 0u);  // warnings, not errors
}

TEST(Lint, OrdinaryParametersDoNotWarn) {
  spice::Circuit ckt;
  build_divider(ckt);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "nonphysical-parameter"), 0u) << r.summary();
}

// ---------------------------------------------------- pull-in-above-rail

TEST(Lint, NemfetThatCannotActuateWarns) {
  spice::Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId g = ckt.node("g");
  spice::NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<Resistor>("Rload", vdd, d, 1e4);
  // A 400x stiffer beam: pull-in scales as sqrt(k), so Vpi lands near
  // 9 V against a 1.2 V rail (still below the 100 kN/m absurdity bar).
  devices::NemsParams stiff = tech::nems_90nm();
  stiff.spring_k *= 400.0;
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, stiff,
                  1e-6);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "pull-in-above-rail", "1.2")) << r.summary();
  EXPECT_EQ(count_rule(r, "nonphysical-parameter"), 0u) << r.summary();
}

TEST(Lint, CalibratedNemfetDoesNotWarn) {
  spice::Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId g = ckt.node("g");
  spice::NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<Resistor>("Rload", vdd, d, 1e4);
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1e-6);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "pull-in-above-rail"), 0u) << r.summary();
  EXPECT_TRUE(r.clean());
}

// ------------------------------------------------------- structural-rank

TEST(Lint, RankDeficitNamesBranchUnknowns) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<VoltageSource>("V2", a, ckt.gnd(), SourceWave::dc(2.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  LintReport r = lint::lint_circuit(ckt);
  // Two identical voltage rows cannot both be matched: rank n-1 of n,
  // attributed to a source branch current (nodes are covered).
  EXPECT_TRUE(has(r, "structural-rank", "i(")) << r.summary();
}

TEST(Lint, FullRankCircuitPassesAndSkipsWhenDisabled) {
  spice::Circuit ckt;
  build_divider(ckt);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(count_rule(r, "structural-rank"), 0u);
  // With structural checks off, graph rules still run but the matching
  // does not; a singular circuit then reports only graph findings.
  spice::Circuit broken;
  spice::NodeId a = broken.node("a");
  broken.add<VoltageSource>("V1", a, broken.gnd(), SourceWave::dc(1.0));
  broken.add<VoltageSource>("V2", a, broken.gnd(), SourceWave::dc(2.0));
  broken.add<Resistor>("R1", a, broken.gnd(), 1e3);
  lint::LintOptions no_structural;
  no_structural.structural_checks = false;
  LintReport r2 = lint::lint_circuit(broken, no_structural);
  EXPECT_EQ(count_rule(r2, "structural-rank"), 0u) << r2.summary();
  EXPECT_TRUE(has(r2, "voltage-loop", "'V2'"));
}

// ------------------------------------------------------- name-convention

TEST(Lint, MisleadingDeviceNameIsAHint) {
  spice::Circuit ckt;
  build_divider(ckt);
  // An "AL"-style name (SRAM access-transistor idiom): first letter
  // does not match the element letter, so it cannot round-trip through
  // the parser's first-letter dispatch.
  ckt.add<Resistor>("XR", ckt.node("in"), ckt.gnd(), 1e4);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_TRUE(has(r, "name-convention", "'XR'")) << r.summary();
  EXPECT_EQ(r.hints, 1u);
  // Hints do not spoil cleanliness: they are portability advice.
  EXPECT_TRUE(r.clean());
}

TEST(Lint, ConventionalNamesGetNoHint) {
  spice::Circuit ckt;
  build_divider(ckt);
  LintReport r = lint::lint_circuit(ckt);
  EXPECT_EQ(r.hints, 0u) << r.summary();
}

// -------------------------------------------------- report shape / caps

TEST(Lint, FindingsAreSortedBySeverityAndCapped) {
  spice::Circuit ckt;
  build_divider(ckt);
  ckt.add<Resistor>("XR", ckt.node("in"), ckt.gnd(), 1e4);  // hint
  ckt.add<Capacitor>("C9", ckt.node("mid"), ckt.gnd(), 2.0);  // warning
  ckt.add<Resistor>("R9", ckt.node("p"), ckt.node("q"), 1e3);  // errors
  LintReport r = lint::lint_circuit(ckt);
  ASSERT_GE(r.findings.size(), 3u);
  EXPECT_EQ(r.findings.front().severity, LintSeverity::kError);
  EXPECT_EQ(r.findings.back().severity, LintSeverity::kHint);
  // to_string carries severity, rule and subject.
  const std::string line = r.findings.front().to_string();
  EXPECT_NE(line.find("error["), std::string::npos) << line;

  // The cap truncates the findings list but not the counters.
  lint::LintOptions capped;
  capped.max_findings = 2;
  LintReport rc = lint::lint_circuit(ckt, capped);
  EXPECT_EQ(rc.findings.size(), 2u);
  EXPECT_EQ(rc.errors + rc.warnings + rc.hints,
            r.errors + r.warnings + r.hints);
  EXPECT_NE(rc.summary().find("shown"), std::string::npos) << rc.summary();
}

// ------------------------------------------------------ analysis gating

TEST(LintGate, StrictRejectsBeforeAnyNewtonWork) {
  spice::Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<VoltageSource>("V2", a, ckt.gnd(), SourceWave::dc(2.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  spice::MnaSystem system(ckt);
  spice::RunReport report;
  spice::OpOptions options;
  options.lint = lint::LintMode::kStrict;
  options.report = &report;
  try {
    spice::operating_point(system, options);
    FAIL() << "expected LintError";
  } catch (const lint::LintError& e) {
    EXPECT_TRUE(e.report().has_errors());
    EXPECT_NE(std::string(e.what()).find("voltage-loop"), std::string::npos)
        << e.what();
  }
  // Rejected before the homotopy ladder: no stage was ever recorded,
  // but the findings made it into the run report.
  EXPECT_TRUE(report.stages.empty());
  EXPECT_FALSE(report.lint_findings.empty());
}

TEST(LintGate, StrictAllowsWarningsThrough) {
  spice::Circuit ckt;
  build_divider(ckt);
  ckt.add<Capacitor>("C9", ckt.node("mid"), ckt.gnd(), 2.0);  // warning only
  spice::MnaSystem system(ckt);
  spice::OpOptions options;
  options.lint = lint::LintMode::kStrict;
  spice::OpResult op = spice::operating_point(system, options);
  EXPECT_NEAR(op.v("mid"), 0.9, 1e-9);
}

TEST(LintGate, WarnEmbedsFindingsAndSolves) {
  spice::Circuit ckt;
  build_divider(ckt);
  ckt.add<Capacitor>("C9", ckt.node("mid"), ckt.gnd(), 2.0);
  spice::MnaSystem system(ckt);
  spice::RunReport report;
  spice::OpOptions options;  // default mode is kWarn
  options.report = &report;
  spice::OpResult op = spice::operating_point(system, options);
  EXPECT_NEAR(op.v("mid"), 0.9, 1e-9);
  ASSERT_FALSE(report.lint_findings.empty());
  EXPECT_EQ(report.lint_findings.front().rule, "nonphysical-parameter");
  // The report summary now mentions the lint section.
  EXPECT_NE(report.summary().find("lint["), std::string::npos)
      << report.summary();
}

TEST(LintGate, OffIsBitwiseIdenticalToWarn) {
  // Same circuit, same transient, lint off vs on: every sample of every
  // signal must agree to the last bit (the analyzer never touches
  // device or system state).
  auto build = [](spice::Circuit& ckt) {
    spice::NodeId vdd = ckt.node("vdd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
    ckt.add<VoltageSource>(
        "Vin", in, ckt.gnd(),
        SourceWave::pulse(0.0, 1.2, 0.2e-9, 20e-12, 20e-12, 1e-9));
    ckt.add<Mosfet>("Mp", out, in, vdd, MosPolarity::kPmos,
                    tech::pmos_90nm(), 0.4e-6, 1e-7);
    ckt.add<Mosfet>("Mn", out, in, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), 0.2e-6, 1e-7);
    ckt.add<Capacitor>("Cl", out, ckt.gnd(), 5e-15);
  };
  spice::TransientOptions tran;
  tran.tstop = 1e-9;

  spice::Circuit c1;
  build(c1);
  spice::MnaSystem s1(c1);
  tran.lint = lint::LintMode::kOff;
  spice::Waveform w_off = spice::transient(s1, tran);

  spice::Circuit c2;
  build(c2);
  spice::MnaSystem s2(c2);
  tran.lint = lint::LintMode::kWarn;
  spice::Waveform w_warn = spice::transient(s2, tran);

  ASSERT_EQ(w_off.num_samples(), w_warn.num_samples());
  ASSERT_EQ(w_off.num_signals(), w_warn.num_signals());
  for (std::size_t k = 0; k < w_off.num_samples(); ++k) {
    ASSERT_EQ(w_off.times()[k], w_warn.times()[k]);
    for (std::size_t s = 0; s < w_off.num_signals(); ++s) {
      ASSERT_EQ(w_off.sample(s, k), w_warn.sample(s, k))
          << w_off.signal_names()[s] << " @ sample " << k;
    }
  }
}

}  // namespace
}  // namespace nemsim
