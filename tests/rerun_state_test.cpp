// Re-run statefulness regression: running the same analysis twice on one
// MnaSystem must match a fresh build bitwise, for every engine
// configuration.  Device state committed by a run (capacitor companion
// history, NEMS beam position/velocity, bypass caches) must never leak
// into the next run.
#include <gtest/gtest.h>

#include <vector>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/compile.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::Waveform;

/// Pulse-driven hybrid inverter: the NEMFET beam actuates and releases,
/// committing internal state every accepted step.
Circuit make_pulsed_inverter() {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                         SourceWave::pulse(0.0, 1.2, 0.2e-9, 50e-12, 50e-12,
                                           1.5e-9, 4e-9));
  ckt.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4_um, 0.1_um);
  ckt.add<Nemfet>("XN", out, in, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1.0_um);
  ckt.add<Capacitor>("Cl", out, ckt.gnd(), 2e-15);
  ckt.add<Resistor>("Rl", out, ckt.gnd(), 1e9);
  return ckt;
}

/// Same inverter with a DC input, for operating-point sweeps.
Circuit make_dc_inverter() {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4_um, 0.1_um);
  ckt.add<Nemfet>("XN", out, in, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1.0_um);
  ckt.add<Resistor>("Rl", out, ckt.gnd(), 1e9);
  return ckt;
}

void expect_bitwise(const Waveform& a, const Waveform& b) {
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (std::size_t k = 0; k < a.num_samples(); ++k) {
    ASSERT_EQ(a.times()[k], b.times()[k]) << "sample " << k;
    for (std::size_t s = 0; s < a.num_signals(); ++s) {
      ASSERT_EQ(a.sample(s, k), b.sample(s, k))
          << a.signal_names()[s] << " sample " << k;
    }
  }
}

/// Runs transient twice on one system and once on a fresh build; all
/// three waveforms must be bit-identical.
void check_transient_rerun(const spice::TransientOptions& o) {
  Circuit reused_ckt = make_pulsed_inverter();
  spice::MnaSystem reused(reused_ckt);
  const Waveform first = spice::transient(reused, o);
  const Waveform second = spice::transient(reused, o);

  Circuit fresh_ckt = make_pulsed_inverter();
  spice::MnaSystem fresh(fresh_ckt);
  const Waveform expect = spice::transient(fresh, o);

  expect_bitwise(expect, first);
  expect_bitwise(expect, second);
}

TEST(RerunState, TransientPlain) {
  spice::TransientOptions o;
  o.tstop = 2e-9;
  check_transient_rerun(o);
}

TEST(RerunState, TransientWithAccelerators) {
  spice::TransientOptions o;
  o.tstop = 2e-9;
  o.newton.bypass = true;
  o.newton.jacobian_reuse = true;
  check_transient_rerun(o);
}

TEST(RerunState, TransientForcedSparse) {
  spice::TransientOptions o;
  o.tstop = 2e-9;
  o.newton.solver = spice::JacobianSolver::kSparse;
  check_transient_rerun(o);
}

TEST(RerunState, OpThenTransientMatchesFreshTransient) {
  // An operating point solved first must not change the transient that
  // follows on the same system.
  Circuit reused_ckt = make_pulsed_inverter();
  spice::MnaSystem reused(reused_ckt);
  (void)spice::operating_point(reused);
  spice::TransientOptions o;
  o.tstop = 2e-9;
  const Waveform after_op = spice::transient(reused, o);

  Circuit fresh_ckt = make_pulsed_inverter();
  spice::MnaSystem fresh(fresh_ckt);
  expect_bitwise(spice::transient(fresh, o), after_op);
}

TEST(RerunState, DcSweepRerunsBitwise) {
  Circuit reused_ckt = make_dc_inverter();
  spice::MnaSystem reused(reused_ckt);
  std::vector<double> points;
  for (int i = 0; i <= 12; ++i) points.push_back(1.2 * i / 12.0);
  auto& vin = reused_ckt.find<VoltageSource>("Vin");
  auto sweep = [&vin](double v) { vin.set_dc(v); };
  const Waveform first = spice::dc_sweep(reused, sweep, points);
  const Waveform second = spice::dc_sweep(reused, sweep, points);

  Circuit fresh_ckt = make_dc_inverter();
  spice::MnaSystem fresh(fresh_ckt);
  auto& fresh_vin = fresh_ckt.find<VoltageSource>("Vin");
  const Waveform expect = spice::dc_sweep(
      fresh, [&fresh_vin](double v) { fresh_vin.set_dc(v); }, points);

  expect_bitwise(expect, first);
  expect_bitwise(expect, second);
}

TEST(RerunState, CompiledInterleavedAnalysesStayClean) {
  // Mixing analyses on one CompiledCircuit: each run owns its state, so
  // any interleaving reproduces the fresh-compile result bitwise.
  spice::TransientOptions o;
  o.tstop = 2e-9;
  spice::CompiledCircuit compiled = spice::compile(make_pulsed_inverter());
  (void)compiled.run_op();
  const Waveform tran_a = compiled.run_transient(o);
  (void)compiled.run_op();
  const Waveform tran_b = compiled.run_transient(o);

  spice::CompiledCircuit fresh = spice::compile(make_pulsed_inverter());
  const Waveform expect = fresh.run_transient(o);
  expect_bitwise(expect, tran_a);
  expect_bitwise(expect, tran_b);
}

}  // namespace
}  // namespace nemsim
