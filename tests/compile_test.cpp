// Compile/execute split: ParamBank mechanics, CompiledCircuit semantics,
// overlay-vs-setter equivalence, and the batched Monte-Carlo driver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/compile.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"
#include "nemsim/variation/montecarlo.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::CompiledCircuit;
using spice::CompileOptions;
using spice::ParamPatch;
using spice::Waveform;

/// Hybrid NEMS-CMOS inverter driving a load cap: nonlinear, has
/// committed state (companions + beam branch memory), pulse breakpoints.
Circuit make_hybrid_inverter() {
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                         SourceWave::pulse(0.0, 1.2, 0.2e-9, 50e-12, 50e-12,
                                           1.5e-9, 4e-9));
  ckt.add<Mosfet>("MP", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4_um, 0.1_um);
  ckt.add<Nemfet>("XN", out, in, ckt.gnd(), NemsPolarity::kN,
                  tech::nems_90nm(), 1.0_um);
  ckt.add<Capacitor>("Cl", out, ckt.gnd(), 2e-15);
  ckt.add<Resistor>("Rl", out, ckt.gnd(), 1e9);
  return ckt;
}

void expect_bitwise(const Waveform& a, const Waveform& b) {
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (std::size_t k = 0; k < a.num_samples(); ++k) {
    ASSERT_EQ(a.times()[k], b.times()[k]) << "sample " << k;
    for (std::size_t s = 0; s < a.num_signals(); ++s) {
      ASSERT_EQ(a.sample(s, k), b.sample(s, k))
          << a.signal_names()[s] << " sample " << k;
    }
  }
}

TEST(ParamBank, BindCreatesColumnsAndSettersWriteThrough) {
  Circuit ckt = make_hybrid_inverter();
  spice::ParamBank& bank = ckt.param_bank();
  const std::size_t mos_col = bank.find_column("mos.vth_shift");
  ASSERT_NE(mos_col, spice::ParamBank::npos);
  auto& mp = ckt.find<Mosfet>("MP");
  ASSERT_TRUE(mp.vth_shift_slot().valid());
  mp.set_vth_shift(0.017);
  EXPECT_EQ(bank.value(mp.vth_shift_slot()), 0.017);
  bank.set_value(mp.vth_shift_slot(), -0.005);
  EXPECT_EQ(mp.vth_shift(), -0.005);
}

TEST(ParamBank, SnapshotRestoreRoundTrips) {
  Circuit ckt = make_hybrid_inverter();
  spice::ParamBank& bank = ckt.param_bank();
  const spice::ParamBank::Snapshot snap = bank.snapshot();
  auto& xn = ckt.find<Nemfet>("XN");
  xn.set_vth_shift(0.03);
  ckt.find<Resistor>("Rl").set_resistance(2e9);
  bank.restore(snap);
  EXPECT_EQ(xn.vth_shift(), 0.0);
  EXPECT_EQ(ckt.find<Resistor>("Rl").resistance(), 1e9);
}

TEST(ParamBank, FreeStandingDeviceUsesLocalFallback) {
  // A device never added to a Circuit has no bank; its BankedParam
  // handles fall back to local storage.
  Resistor r("R1", spice::NodeId{1}, spice::NodeId{0}, 50.0);
  EXPECT_FALSE(r.resistance_slot().valid());
  r.set_resistance(75.0);
  EXPECT_EQ(r.resistance(), 75.0);
}

TEST(Compile, FreezesStructureButNotParameters) {
  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  EXPECT_TRUE(compiled.circuit().structure_frozen());
  EXPECT_THROW(compiled.circuit().add<Resistor>("Rnew", spice::NodeId{1},
                                                spice::NodeId{0}, 1e3),
               NetlistError);
  EXPECT_THROW(compiled.circuit().node("fresh_node"), NetlistError);
  // Existing-node lookup and parameter writes stay open.
  EXPECT_NO_THROW(compiled.circuit().node("out"));
  EXPECT_NO_THROW(compiled.circuit().find<Resistor>("Rl").set_resistance(2e9));
}

TEST(Compile, MemoizesLintFindings) {
  Circuit ckt = make_hybrid_inverter();
  // 2 TOhm is past lint's physically-sensible resistor ceiling.
  ckt.find<Resistor>("Rl").set_resistance(2e12);
  CompiledCircuit compiled = spice::compile(std::move(ckt));
  EXPECT_GT(compiled.lint_findings().warnings, 0u);
}

TEST(Compile, OpMatchesLegacyBitwise) {
  Circuit legacy = make_hybrid_inverter();
  spice::MnaSystem system(legacy);
  const spice::OpResult expect = spice::operating_point(system);

  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  const spice::OpResult first = compiled.run_op();
  const spice::OpResult second = compiled.run_op();
  ASSERT_EQ(expect.raw().size(), first.raw().size());
  for (std::size_t i = 0; i < expect.raw().size(); ++i) {
    EXPECT_EQ(expect.raw()[i], first.raw()[i]) << "unknown " << i;
    EXPECT_EQ(first.raw()[i], second.raw()[i]) << "unknown " << i;
  }
}

TEST(Compile, TransientMatchesLegacyAndRerunsBitwise) {
  Circuit legacy = make_hybrid_inverter();
  spice::MnaSystem system(legacy);
  spice::TransientOptions o;
  o.tstop = 2e-9;
  const Waveform expect = spice::transient(system, o);

  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  const Waveform first = compiled.run_transient(o);
  // Second run reuses the memoized breakpoint schedule and must not
  // inherit any committed state from the first.
  const Waveform second = compiled.run_transient(o);
  expect_bitwise(expect, first);
  expect_bitwise(first, second);
}

TEST(Compile, OverlayMatchesRebuiltCircuitBitwise) {
  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  ParamPatch patch;
  patch.push_back(
      {compiled.circuit().find<Mosfet>("MP").vth_shift_slot(), 0.012});
  patch.push_back(
      {compiled.circuit().find<Nemfet>("XN").vth_shift_slot(), -0.008});
  patch.push_back(
      {compiled.circuit().find<Resistor>("Rl").resistance_slot(), 5e8});
  compiled.set_overlay(patch);
  spice::TransientOptions o;
  o.tstop = 2e-9;
  const Waveform overlaid = compiled.run_transient(o);

  Circuit rebuilt = make_hybrid_inverter();
  rebuilt.find<Mosfet>("MP").set_vth_shift(0.012);
  rebuilt.find<Nemfet>("XN").set_vth_shift(-0.008);
  rebuilt.find<Resistor>("Rl").set_resistance(5e8);
  spice::MnaSystem system(rebuilt);
  const Waveform expect = spice::transient(system, o);
  expect_bitwise(expect, overlaid);

  // clear_overlay returns to the compile-time base.
  compiled.clear_overlay();
  EXPECT_EQ(compiled.circuit().find<Mosfet>("MP").vth_shift(), 0.0);
  EXPECT_EQ(compiled.circuit().find<Resistor>("Rl").resistance(), 1e9);
}

TEST(Compile, OverlayResyncsDerivedState) {
  // Capacitance lives mirrored inside the companion; an overlay write
  // must reach the stamps via on_params_changed.
  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  auto& cl = compiled.circuit().find<Capacitor>("Cl");
  ParamPatch patch{{cl.capacitance_slot(), 4e-15}};
  compiled.set_overlay(patch);
  EXPECT_EQ(cl.capacitance(), 4e-15);
  compiled.clear_overlay();
  EXPECT_EQ(cl.capacitance(), 2e-15);
}

/// Minimal bank-backed device whose resync calls are countable: proves
/// the dirty-column filter in Circuit::notify_params_changed skips
/// devices none of whose columns changed.
class ResyncProbe final : public spice::Device {
 public:
  ResyncProbe(std::string name, spice::NodeId p, spice::NodeId n,
              const char* column)
      : Device(std::move(name)), p_(p), n_(n), column_(column) {}

  void bind_params(spice::ParamBank& bank) override {
    value_.bind(bank, column_, name());
  }
  void on_params_changed() override { ++resyncs; }
  void stamp(spice::StampContext& ctx) const override {
    const double g = 1.0 / 1e6;
    const double i = g * (ctx.v(p_) - ctx.v(n_));
    ctx.add_f(p_, i);
    ctx.add_f(n_, -i);
    ctx.add_J(p_, p_, g);
    ctx.add_J(p_, n_, -g);
    ctx.add_J(n_, p_, -g);
    ctx.add_J(n_, n_, g);
  }
  bool is_linear() const override { return true; }

  spice::ParamSlot slot() const { return value_.slot(); }
  int resyncs = 0;

 private:
  spice::NodeId p_, n_;
  const char* column_;
  spice::BankedParam value_{1.0};
};

TEST(ParamBank, NotifyResyncsOnlyDevicesOnDirtyColumns) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  auto& touched = ckt.add<ResyncProbe>("P1", a, ckt.gnd(), "probe.alpha");
  auto& untouched = ckt.add<ResyncProbe>("P2", a, ckt.gnd(), "probe.beta");

  // A write that changes a value dirties only its own column.
  ckt.param_bank().set_value(touched.slot(), 2.5);
  ckt.notify_params_changed();
  EXPECT_EQ(touched.resyncs, 1);
  EXPECT_EQ(untouched.resyncs, 0);

  // A write of the value already stored is not a change at all.
  ckt.param_bank().set_value(touched.slot(), 2.5);
  ckt.notify_params_changed();
  EXPECT_EQ(touched.resyncs, 1);
  EXPECT_EQ(untouched.resyncs, 0);

  // restore() marks exactly the columns whose values it moves back.
  const spice::ParamBank::Snapshot snap = ckt.param_bank().snapshot();
  ckt.param_bank().set_value(untouched.slot(), -3.0);
  ckt.param_bank().restore(snap);
  ckt.notify_params_changed();
  EXPECT_EQ(touched.resyncs, 1);
  EXPECT_EQ(untouched.resyncs, 1);
}

TEST(Compile, ReuseNewtonWorkspaceConvergesClose) {
  // Shared-solver mode is a perf feature, not a bitwise one: assert the
  // answers agree to solver tolerance across repeated variant runs.
  CompileOptions co;
  co.reuse_newton_workspace = true;
  CompiledCircuit compiled = spice::compile(make_hybrid_inverter(), co);
  const spice::OpResult base = compiled.run_op();
  CompiledCircuit reference = spice::compile(make_hybrid_inverter());
  const spice::OpResult expect = reference.run_op();
  ASSERT_EQ(expect.raw().size(), base.raw().size());
  for (std::size_t i = 0; i < expect.raw().size(); ++i) {
    EXPECT_NEAR(base.raw()[i], expect.raw()[i],
                1e-6 * std::max(1.0, std::abs(expect.raw()[i])));
  }
}

TEST(MonteCarloBatch, MatchesSequentialDriverBitwise) {
  variation::MonteCarloOptions options;
  options.trials = 8;
  options.sigma_fraction = 0.03;

  Circuit mutable_ckt = make_hybrid_inverter();
  const variation::MonteCarloResult expect = variation::monte_carlo(
      mutable_ckt,
      [](Circuit& c) {
        spice::MnaSystem system(c);
        spice::OpOptions o;
        o.lint = lint::LintMode::kOff;
        return spice::operating_point(system, o).v("out");
      },
      options);

  CompiledCircuit compiled = spice::compile(make_hybrid_inverter());
  const variation::MonteCarloResult got = variation::monte_carlo_batch(
      compiled, [](CompiledCircuit& cc) { return cc.run_op().v("out"); },
      options);

  ASSERT_EQ(expect.samples.size(), got.samples.size());
  for (std::size_t i = 0; i < expect.samples.size(); ++i) {
    EXPECT_EQ(expect.samples[i], got.samples[i]) << "trial " << i;
  }
  // The overlay is cleared on exit.
  EXPECT_EQ(compiled.circuit().find<Mosfet>("MP").vth_shift(), 0.0);
}

TEST(MonteCarloBatch, PatchMatchesApplyDrawForDraw) {
  Circuit ckt = make_hybrid_inverter();
  Rng rng_a(7);
  const ParamPatch patch = variation::vth_variation_patch(ckt, 0.06, rng_a);
  Rng rng_b(7);
  variation::apply_vth_variation(ckt, 0.06, rng_b);
  ASSERT_EQ(patch.size(), 2u);  // one MOSFET + one NEMFET
  EXPECT_EQ(ckt.param_bank().value(patch[0].slot), patch[0].value);
  EXPECT_EQ(ckt.param_bank().value(patch[1].slot), patch[1].value);
}

}  // namespace
}  // namespace nemsim
