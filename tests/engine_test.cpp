// Engine-internals breadth tests: Newton options/statistics and homotopy
// paths, MNA unknown bookkeeping, nodesets, transient statistics, CSV
// export, and a ring oscillator as a many-cycle transient stress test.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "nemsim/core/gates.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/newton.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Diode;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

// ------------------------------------------------------------ MnaSystem

TEST(Mna, UnknownNamingAndLookup) {
  Circuit ckt;
  spice::NodeId a = ckt.node("alpha");
  ckt.add<VoltageSource>("Vs", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<devices::Inductor>("L1", a, ckt.gnd(), 1.0_nH);
  MnaSystem system(ckt);
  EXPECT_EQ(system.num_unknowns(), 3u);  // v(alpha), i(Vs), i(L1)
  EXPECT_TRUE(system.has_unknown("v(alpha)"));
  EXPECT_TRUE(system.has_unknown("i(Vs)"));
  EXPECT_TRUE(system.has_unknown("i(L1)"));
  EXPECT_FALSE(system.has_unknown("v(beta)"));
  EXPECT_THROW(system.unknown_by_name("v(beta)"), InvalidArgument);
  EXPECT_FALSE(system.unknown_of(ckt.gnd()).valid());
}

TEST(Mna, NodesetSeedsInitialGuess) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("Vs", a, ckt.gnd(), SourceWave::dc(1.0));
  MnaSystem system(ckt);
  system.set_nodeset(a, 0.7);
  linalg::Vector x0 = system.initial_guess();
  EXPECT_DOUBLE_EQ(x0[system.unknown_of(a).index], 0.7);
  system.clear_nodesets();
  EXPECT_DOUBLE_EQ(system.initial_guess()[system.unknown_of(a).index], 0.0);
  EXPECT_THROW(system.set_nodeset(ckt.gnd(), 1.0), InvalidArgument);
}

TEST(Mna, BreakpointsMergedAndSorted) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  ckt.add<VoltageSource>(
      "V1", a, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 2e-9, 1e-10, 1e-10, 1e-9));
  ckt.add<VoltageSource>("V2", b, ckt.gnd(),
                         SourceWave::pwl({{1e-9, 0.0}, {5e-9, 1.0}}));
  ckt.add<Resistor>("R1", a, b, 1e3);
  MnaSystem system(ckt);
  auto bps = system.breakpoints(10e-9);
  ASSERT_GE(bps.size(), 5u);
  for (std::size_t i = 1; i < bps.size(); ++i) {
    EXPECT_GT(bps[i], bps[i - 1]);
  }
  EXPECT_DOUBLE_EQ(bps.front(), 1e-9);  // PWL point comes first
  // Outside (0, tstop] is filtered.
  auto early = system.breakpoints(0.5e-9);
  EXPECT_TRUE(early.empty());
}

// --------------------------------------------------------------- Newton

TEST(Newton, StatsCountIterations) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(3.0));
  ckt.add<Resistor>("R1", in, a, 1e3);
  ckt.add<Diode>("D1", a, ckt.gnd());
  MnaSystem system(ckt);
  spice::NewtonSolver solver(system, spice::NewtonOptions{});
  spice::NewtonStats stats;
  linalg::Vector x = solver.solve(system.initial_guess(),
                                  spice::AnalysisMode::kDcOperatingPoint,
                                  0.0, 0.0, &stats);
  EXPECT_GT(stats.total_iterations, 1);
  EXPECT_LT(stats.total_iterations, 100);
  EXPECT_GT(x[system.unknown_of(a).index], 0.4);
}

TEST(Newton, DisabledFallbacksStillSolveEasyCircuits) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  spice::NewtonOptions options;
  options.gmin_stepping = false;
  options.source_stepping = false;
  spice::NewtonSolver solver(system, options);
  EXPECT_NO_THROW(solver.solve(system.initial_guess(),
                               spice::AnalysisMode::kDcOperatingPoint, 0.0,
                               0.0));
}

TEST(Newton, TinyIterationBudgetFailsCleanly) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(5.0));
  ckt.add<Resistor>("R1", in, a, 1e3);
  ckt.add<Diode>("D1", a, ckt.gnd());
  MnaSystem system(ckt);
  spice::NewtonOptions options;
  options.max_iterations = 1;
  options.gmin_stepping = false;
  options.source_stepping = false;
  spice::NewtonSolver solver(system, options);
  EXPECT_THROW(solver.solve(system.initial_guess(),
                            spice::AnalysisMode::kDcOperatingPoint, 0.0,
                            0.0),
               ConvergenceError);
}

// ------------------------------------------------------------ transient

TEST(TransientStats, CountsAcceptedSteps) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.1_ns, 10.0_ps, 10.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);
  spice::TransientStats stats;
  spice::TransientOptions options;
  options.tstop = 5.0_ns;
  options.stats = &stats;
  spice::Waveform wave = spice::transient(system, options);
  EXPECT_EQ(stats.accepted_steps + 1, wave.num_samples());  // +1 for t=0
  EXPECT_GT(stats.max_dt, stats.min_dt);
  EXPECT_EQ(stats.newton_failures, 0u);
}

TEST(TransientStats, TighterLteMeansMoreSteps) {
  auto run_with = [](double lte) {
    Circuit ckt;
    spice::NodeId in = ckt.node("in");
    spice::NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("V1", in, ckt.gnd(),
                           SourceWave::sine(0.5, 0.4, 1e9));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, ckt.gnd(), 0.2_pF);
    MnaSystem system(ckt);
    spice::TransientStats stats;
    spice::TransientOptions options;
    options.tstop = 3.0_ns;
    options.lte_reltol = lte;
    options.stats = &stats;
    spice::transient(system, options);
    return stats.accepted_steps;
  };
  EXPECT_GT(run_with(2e-4), run_with(2e-2));
}

// -------------------------------------------------------------- CSV dump

TEST(WaveformCsv, SelectedColumnsRoundTrip) {
  spice::Waveform w({"a", "b"});
  linalg::Vector v(2);
  v[0] = 1.5;
  v[1] = -2.0;
  w.append(0.0, v);
  v[0] = 2.5;
  v[1] = -3.0;
  w.append(1e-9, v);
  std::ostringstream os;
  w.write_csv(os, {"b"});
  EXPECT_EQ(os.str(), "t,b\n0,-2\n1e-09,-3\n");
  std::ostringstream all;
  w.write_csv(all);
  EXPECT_NE(all.str().find("t,a,b"), std::string::npos);
  EXPECT_THROW(w.write_csv(os, {"zzz"}), MeasurementError);
}

// -------------------------------------------------------- ring oscillator

TEST(RingOscillator, OscillatesAtPlausibleFrequency) {
  // 5-stage CMOS ring: f = 1/(2 * N * t_stage).  A many-cycle transient
  // exercises step control, breakpoint-free adaptation and periodicity.
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  const int stages = 5;
  std::vector<spice::NodeId> nodes;
  for (int i = 0; i < stages; ++i) {
    nodes.push_back(ckt.node("n" + std::to_string(i)));
  }
  for (int i = 0; i < stages; ++i) {
    core::add_inverter(ckt, "INV" + std::to_string(i), nodes[i],
                       nodes[(i + 1) % stages], vdd);
  }
  // Kick-start: tiny charge injection on one node.
  ckt.add<devices::CurrentSource>(
      "Ikick", ckt.gnd(), nodes[0],
      SourceWave::pulse(0.0, 50e-6, 10e-12, 5e-12, 5e-12, 50e-12));

  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 3.0_ns;
  options.dt_max = 5.0_ps;
  spice::Waveform wave = spice::transient(system, options);

  // Count rising crossings of 0.6 V on one node in the last 2 ns.
  int crossings = 0;
  while (spice::has_crossing(wave, "v(n0)", 0.6, spice::Edge::kRising,
                             crossings + 1, 1.0_ns)) {
    ++crossings;
  }
  ASSERT_GE(crossings, 3) << "ring did not oscillate";
  const double t_first = spice::cross_time(wave, "v(n0)", 0.6,
                                           spice::Edge::kRising, 1, 1.0_ns);
  const double t_last = spice::cross_time(
      wave, "v(n0)", 0.6, spice::Edge::kRising, crossings, 1.0_ns);
  const double period = (t_last - t_first) / (crossings - 1);
  const double freq = 1.0 / period;
  // 90 nm unloaded inverters: a few GHz for 5 stages.
  EXPECT_GT(freq, 1e9);
  EXPECT_LT(freq, 80e9);
  // Rail-to-rail swing.
  EXPECT_GT(spice::max_value(wave, "v(n0)", 1.0_ns), 1.1);
  EXPECT_LT(spice::min_value(wave, "v(n0)", 1.0_ns), 0.1);
}

}  // namespace
}  // namespace nemsim
