* Node held only by a capacitor: DC value exists only through gmin.
V1 in 0 DC 1
R1 in 0 1k
C1 x 0 1p
.end
