* A 2-farad on-chip capacitor: nonphysical-parameter warning.
V1 in 0 DC 1
R1 in out 1k
R2 out 0 1k
C1 out 0 2
.end
