* analyze fixture: NEMFET whose gate drive can never reach pull-in.
* The gate is biased at 0.2 V while every other terminal interval sits
* at 0 V, so |vgf| <= 0.2 V < 0.9 * V_PI (~0.41 V): the beam provably
* stays up and the channel never turns on.  Expected: the
* "nemfet-never-actuates" warning, nemsim-lint --analyze exits 1.
VG g 0 DC 0.2
RD d 0 10k
X1 d g 0 NEMFET_N W=1e-6
.op
.end
