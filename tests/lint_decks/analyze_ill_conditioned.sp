* analyze fixture: conductances thirteen decades apart in one matrix.
* R1 = 10 mohm (100 S) and R2 = 100 Gohm (1e-11 S) are both inside the
* lint plausibility range, but their 1e13 spread exceeds the 1e9
* conditioning threshold: LU pivots mixing the two scales lose ~13
* digits.  Expected: "conductance-scale-spread" warning, exit 1.
V1 in 0 DC 1.0
R1 in mid 0.01
R2 mid 0 100G
.op
.end
