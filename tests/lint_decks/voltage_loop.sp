* Two voltage sources in parallel with different values: voltage-loop
* error plus the parallel-voltage-sources conflict warning.
V1 a 0 DC 1
V2 a 0 DC 2
R1 a 0 1k
.end
