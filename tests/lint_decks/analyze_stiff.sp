* analyze fixture: two RC poles seven decades apart.
* tau(slow) = 1k * 1u = 1 ms, tau(fast) = 1k * 0.1p = 100 ps; the ratio
* 1e7 exceeds the 1e6 stiffness threshold, so a transient would hold dt
* at the fast pole while the waveform evolves on the slow one.
* Expected: the "stiff-time-constants" warning, --analyze exits 1.
V1 in 0 DC 1.0
R1 in slow 1k
C1 slow 0 1u
R2 in fast 1k
C2 fast 0 0.1p
.op
.end
