* analyze fixture: NEMFET held above pull-in on every reachable bias.
* Both |vgd| and |vgs| are pinned at 0.8 V > 1.1 * V_PI (~0.50 V), so
* once (and here: as soon as) the beam closes it can never release —
* the hysteresis loop is unreachable from this bias.  Expected: the
* "nemfet-never-releases" warning, nemsim-lint --analyze exits 1.
VG g 0 DC 0.8
X1 0 g 0 NEMFET_N W=1e-6
.op
.end
