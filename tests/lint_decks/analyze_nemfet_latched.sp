* analyze fixture: NEMFET biased inside the hysteresis window.
* |vgf| is pinned at 0.25 V: above the 1.1 * V_PO hold ceiling
* (~0.14 V) but below the 0.9 * V_PI pull-in floor (~0.41 V).  Neither
* branch can switch from here, so whichever state the beam holds is
* latched — that is how a NEMS keeper is *supposed* to be biased, and
* the "nemfet-hysteresis-latched" hint says so.  Because netlist-built
* beams start open, the bias also provably never reaches pull-in, so
* the "nemfet-never-actuates" warning rides along and the exit code is
* 1, not 0.  Expected: nemsim-lint --analyze exits 1.
VG g 0 DC 0.25
X1 0 g 0 NEMFET_N W=1e-6
.op
.end
