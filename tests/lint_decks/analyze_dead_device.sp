* analyze fixture: a source-free island hanging off ground.
* R3/R4 form a connected component with no voltage or current source in
* it: structurally solvable (lint is silent — every node has two
* connections and a DC path to ground), but nothing can ever drive it,
* so it burns matrix rows for nothing.  Expected: plain lint exits 0;
* --analyze adds a "dead-subcircuit" warning per island device (R3 and
* R4) and exits 1.
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 2k
R3 island 0 1k
R4 island 0 2k
.op
.end
