* Current source into a dead-end node: current-cutset error.
V1 in 0 DC 1
R1 in 0 1k
I1 x 0 DC 1m
.end
