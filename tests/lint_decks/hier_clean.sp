* hierarchical deck, fully connected: lints clean (exit 0)
.subckt divider a b
R1 a b 1k
R2 b 0 1k
.ends
V1 in 0 DC 1.2
X1 in out divider
Rload out 0 10k
.end
