* analyze fixture: NEMFET common-source stage with full-rail gate drive.
* |Vgate - Vsource| can reach 0.6 V > V_PI (~0.45 V for the default
* card), so both operating branches are reachable and the region
* analysis stays silent.  Expected: nemsim-lint --analyze exits 0.
VDD vdd 0 DC 0.6
VG g 0 DC 0.6
RL vdd d 100k
X1 d g 0 NEMFET_N W=1e-6
.op
.end
