* Resistor island with no path to ground: floating-node errors.
V1 in 0 DC 1
R1 in 0 1k
R2 a b 1k
.end
