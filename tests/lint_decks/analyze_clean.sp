* analyze fixture: resistive divider, nothing for the analyzer to say.
* Intervals: v(in) pinned to [1,1] by V1, v(mid) relaxes to the hull
* [0,1] of its neighbors; one conductance decade, no reachability or
* stiffness findings.  Expected: nemsim-lint --analyze exits 0.
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 2k
.op
.end
