* instance port "probe" has nothing attached outside the instance:
* unconnected-subckt-port warning (exit 1).  The node is still grounded
* through the subcircuit body, so no floating-node error masks it.
.subckt divider a b
R1 a b 1k
R2 b 0 1k
.ends
V1 in 0 DC 1.2
X1 in probe divider
.end
