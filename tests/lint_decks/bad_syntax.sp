* Unknown element letter: the parser must reject this deck.
Q1 a b c 1k
.end
