* Clean RC divider: every rule passes.
V1 in 0 DC 1.2
R1 in out 2.2k
R2 out 0 4.7k
C1 out 0 10f
.end
