// Differential-correctness harness tests: generator determinism and
// lint-cleanliness, the tolerance comparator, the contract matrix on
// pinned seeds, deliberate-defect detection, and the deck minimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/check/checker.h"
#include "nemsim/check/compare.h"
#include "nemsim/check/generator.h"
#include "nemsim/check/minimize.h"
#include "nemsim/linalg/matrix.h"
#include "nemsim/spice/lint.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/tech/netlist_parser.h"
#include "nemsim/util/error.h"

namespace nemsim {
namespace {

using check::Analysis;
using check::CheckCaseResult;
using check::CheckOptions;
using check::CompareResult;
using check::Contract;
using check::NamedValue;
using check::Sabotage;
using check::Tolerance;

// ------------------------------------------------------------ generator

TEST(CheckGenerator, SameSeedRebuildsIdenticalCircuit) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    spice::Circuit a = check::generate_circuit(seed);
    spice::Circuit b = check::generate_circuit(seed);
    EXPECT_EQ(spice::netlist_string(a, "t"), spice::netlist_string(b, "t"));
  }
}

TEST(CheckGenerator, DifferentSeedsDiffer) {
  spice::Circuit a = check::generate_circuit(3);
  spice::Circuit b = check::generate_circuit(4);
  EXPECT_NE(spice::netlist_string(a, "t"), spice::netlist_string(b, "t"));
}

TEST(CheckGenerator, GeneratedCircuitsAreLintClean) {
  // Structural cleanliness by construction: no errors, no warnings
  // (hints are allowed — they flag style, not structure).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spice::Circuit ckt = check::generate_circuit(seed);
    lint::LintReport report = lint::lint_circuit(ckt);
    EXPECT_EQ(report.errors, 0u) << "seed " << seed;
    EXPECT_EQ(report.warnings, 0u) << "seed " << seed;
  }
}

TEST(CheckGenerator, RoundTripReproducesTheExactNetlist) {
  // Every generated parameter value is exactly representable at the
  // exporter's precision: export -> parse -> export is a fixpoint.
  for (std::uint64_t seed : {2ull, 11ull}) {
    spice::Circuit a = check::generate_circuit(seed);
    const std::string deck = spice::netlist_string(a, "t");
    spice::Circuit b = tech::parse_netlist(deck);
    EXPECT_EQ(spice::netlist_string(b, "t"), deck);
  }
}

TEST(CheckGenerator, WrappedTwinSharesTheStageSequence) {
  check::GeneratedInfo flat_info, wrapped_info;
  spice::Circuit flat = check::generate_circuit(5, {}, &flat_info, false);
  spice::Circuit wrapped = check::generate_circuit(5, {}, &wrapped_info, true);
  EXPECT_EQ(flat_info.stages, wrapped_info.stages);
  EXPECT_EQ(flat.num_devices(), wrapped.num_devices());
}

// ----------------------------------------------------------- comparator

TEST(CheckCompare, BitwiseCatchesOneUlp) {
  const std::vector<NamedValue> ref = {{"v(a)", 1.0}};
  const std::vector<NamedValue> same = {{"v(a)", 1.0}};
  std::vector<NamedValue> off = ref;
  off[0].value = std::nextafter(1.0, 2.0);
  EXPECT_TRUE(check::compare_values(ref, same, Tolerance{}).ok);
  const CompareResult r = check::compare_values(ref, off, Tolerance{});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.mismatched, 1u);
  EXPECT_NE(r.detail.find("v(a)"), std::string::npos);
}

TEST(CheckCompare, BitwiseNeverMatchesNan) {
  const double nan = std::nan("");
  const std::vector<NamedValue> ref = {{"v(a)", nan}};
  const std::vector<NamedValue> got = {{"v(a)", nan}};
  EXPECT_FALSE(check::compare_values(ref, got, Tolerance{}).ok);
}

TEST(CheckCompare, ReltolScalesWithTheReference) {
  const std::vector<NamedValue> ref = {{"v(a)", 1.0}};
  const std::vector<NamedValue> got = {{"v(a)", 1.0005}};
  EXPECT_TRUE(check::compare_values(ref, got, Tolerance{1e-3, 0.0}).ok);
  EXPECT_FALSE(check::compare_values(ref, got, Tolerance{1e-4, 0.0}).ok);
}

TEST(CheckCompare, UnknownTableDisagreementIsItselfAFailure) {
  const std::vector<NamedValue> ref = {{"v(a)", 1.0}};
  const std::vector<NamedValue> got = {{"v(b)", 1.0}};
  const CompareResult r = check::compare_values(ref, got, Tolerance{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("unknown tables disagree"), std::string::npos);
}

TEST(CheckCompare, TimeTubeForgivesPureSkew) {
  // got is ref delayed by 1 time unit on a ramp: pointwise comparison
  // fails, the +/- 1.5 tube passes (the value is found nearby in time).
  spice::Waveform ref({"sig"}), got({"sig"});
  linalg::Vector v(1);
  for (int k = 0; k <= 10; ++k) {
    v[0] = 0.1 * k;
    ref.append(static_cast<double>(k), v);
    got.append(static_cast<double>(k) + 1.0, v);
  }
  Tolerance pointwise{1e-3, 0.0, 0.0};
  EXPECT_FALSE(check::compare_waveforms(ref, got, pointwise).ok);
  Tolerance tube{1e-3, 0.0, 1.5};
  EXPECT_TRUE(check::compare_waveforms(ref, got, tube).ok);
}

TEST(CheckCompare, TimeTubeFindsCrossingsBetweenGotSamples) {
  // got is the same steep ramp skewed by 0.2, sampled 2.5x coarser than
  // ref: inside the tube the got trace CROSSES each reference value
  // strictly between its own samples, where neither a sample nor a tube
  // endpoint lands closer than half a per-sample swing.  The tube must
  // credit the crossing itself (minimum distance zero), not just the
  // sampled candidates — this is how a sub-tube skew on a fast edge
  // stays forgiven when the two step sequences do not line up.
  spice::Waveform ref({"sig"}), got({"sig"});
  linalg::Vector v(1);
  for (int k = 0; k <= 20; ++k) {
    v[0] = 0.5 * k;
    ref.append(0.5 * k, v);
  }
  for (int k = 0; k <= 9; ++k) {
    v[0] = 1.25 * k - 0.2;
    got.append(1.25 * k, v);
  }
  // Pointwise the 0.2 offset exceeds the allowance (reltol 1e-3 of the
  // 10.0 full-scale = 0.01)...
  Tolerance pointwise{1e-3, 0.0, 0.0};
  EXPECT_FALSE(check::compare_waveforms(ref, got, pointwise).ok);
  // ...and a 0.5 tube contains the crossing but NO got sample within
  // the allowance of most reference values (samples sit 1.25 apart in
  // value), so only crossing detection lets this pass.
  Tolerance tube{1e-3, 0.0, 0.5};
  EXPECT_TRUE(check::compare_waveforms(ref, got, tube).ok);
}

// -------------------------------------------------------- contract matrix

CheckOptions quiet_options() {
  CheckOptions opts;
  return opts;
}

TEST(CheckCase, PinnedSeedsRunCleanAcrossTheFullMatrix) {
  // Smoke corpus: the full 23-leg matrix (9 op + 9 transient + 5 dc
  // sweep contracts, counting the kernel-lane legs) passes on pinned
  // seeds.  A failure here means an engine path broke a redundancy
  // contract — see the mismatch detail.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CheckCaseResult r = check::run_check_case(seed, quiet_options());
    EXPECT_EQ(r.contracts_run, 23u) << "seed " << seed;
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": "
                        << (r.mismatches.empty()
                                ? ""
                                : r.mismatches.front().detail);
  }
}

TEST(CheckCase, BitwiseOnlySubsetRunsTheBitwiseContracts) {
  CheckOptions opts = quiet_options();
  opts.bitwise_only = true;
  const CheckCaseResult r = check::run_check_case(4, opts);
  // determinism + round-trip + hierarchy + compiled for op and tran,
  // determinism + parallel-sweep + compiled for dc sweep: 11 legs, all
  // bitwise.
  EXPECT_EQ(r.contracts_run, 11u);
  EXPECT_TRUE(r.ok()) << (r.mismatches.empty() ? ""
                                               : r.mismatches.front().detail);
}

TEST(CheckCase, OnlyContractRestrictsTheMatrixToOneLeg) {
  CheckOptions opts = quiet_options();
  opts.only_contract = Contract::kAnalyze;
  const CheckCaseResult r = check::run_check_case(5, opts);
  // kAnalyze is an op-only soundness contract: exactly one leg runs,
  // and the predicted intervals contain the solved operating point.
  EXPECT_EQ(r.contracts_run, 1u);
  EXPECT_TRUE(r.ok()) << (r.mismatches.empty() ? ""
                                               : r.mismatches.front().detail);
}

TEST(CheckCase, StaleJacobianSabotageIsCaught) {
  CheckOptions opts = quiet_options();
  opts.sabotage = Sabotage::kStaleJacobian;
  const CheckCaseResult r = check::run_check_case(1, opts);
  ASSERT_FALSE(r.ok());
  bool reuse_flagged = false;
  for (const check::Mismatch& m : r.mismatches) {
    if (m.contract == Contract::kJacobianReuse ||
        m.contract == Contract::kBypassAndReuse) {
      reuse_flagged = true;
      EXPECT_FALSE(m.deck.empty());
      EXPECT_NE(m.detail.find("ref="), std::string::npos);
    }
  }
  EXPECT_TRUE(reuse_flagged);
}

// ------------------------------------------------------------- minimizer

TEST(CheckMinimize, ShrinksASabotagedDeckAndKeepsTheMismatch) {
  CheckOptions opts = quiet_options();
  opts.sabotage = Sabotage::kStaleJacobian;
  const CheckCaseResult r = check::run_check_case(1, opts);
  ASSERT_FALSE(r.ok());
  const check::Mismatch* target = nullptr;
  for (const check::Mismatch& m : r.mismatches) {
    if (m.contract == Contract::kJacobianReuse &&
        m.analysis == Analysis::kOp) {
      target = &m;
      break;
    }
  }
  ASSERT_NE(target, nullptr);

  const check::MinimizeResult min =
      check::minimize_deck(target->deck, target->analysis, target->contract,
                           opts);
  EXPECT_GT(min.devices_removed, 0u);
  EXPECT_LT(min.deck.size(), target->deck.size());
  EXPECT_GT(min.predicate_calls, 0u);
  // The shrunk deck still reproduces through the public predicate.
  EXPECT_TRUE(check::deck_mismatches(min.deck, target->analysis,
                                     target->contract, opts));
}

TEST(CheckMinimize, RefusesAPassingDeck) {
  spice::Circuit ckt = check::generate_circuit(1);
  const std::string deck = spice::netlist_string(ckt, "passing");
  EXPECT_THROW(check::minimize_deck(deck, Analysis::kOp,
                                    Contract::kJacobianReuse, quiet_options()),
               InvalidArgument);
}

// ----------------------------------------------------------- name parsing

TEST(CheckNames, ToStringAndParseRoundTrip) {
  for (Contract c :
       {Contract::kDeterminism, Contract::kRoundTrip, Contract::kHierarchy,
        Contract::kParallelSweep, Contract::kSparseVsDense, Contract::kBypass,
        Contract::kJacobianReuse, Contract::kBypassAndReuse,
        Contract::kAnalyze}) {
    EXPECT_EQ(check::parse_contract(check::to_string(c)), c);
  }
  for (Analysis a :
       {Analysis::kOp, Analysis::kTransient, Analysis::kDcSweep}) {
    EXPECT_EQ(check::parse_analysis(check::to_string(a)), a);
  }
  EXPECT_THROW(check::parse_contract("nope"), InvalidArgument);
  EXPECT_THROW(check::parse_analysis("nope"), InvalidArgument);
}

}  // namespace
}  // namespace nemsim
