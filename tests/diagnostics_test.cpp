// Convergence forensics and run-diagnostics tests: crossing semantics,
// structured ConvergenceError payloads, RunReport accounting, forensics
// dumps, and the coincident-breakpoint regression.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Diode;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::Edge;
using spice::MnaSystem;
using spice::NewtonStats;
using spice::RunReport;
using spice::SteppingStageRecord;
using spice::TransientOptions;
using spice::Waveform;

Waveform make_wave(const std::vector<double>& ts,
                   const std::vector<double>& vs) {
  Waveform wave({"sig"});
  linalg::Vector row(1);
  for (std::size_t k = 0; k < ts.size(); ++k) {
    row[0] = vs[k];
    wave.append(ts[k], row);
  }
  return wave;
}

// ------------------------------------------------- crossing semantics

TEST(Crossing, ExactLevelSampleCountedOnce) {
  // The second sample lands exactly on the level.  The old condition
  // ((v0-level)*(v1-level) <= 0) counted it once for the interval that
  // reaches it AND once for the interval that leaves it.
  Waveform wave = make_wave({0.0, 1.0, 2.0}, {0.0, 0.5, 1.0});
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.5, Edge::kRising, 1), 1.0,
              1e-15);
  EXPECT_FALSE(spice::has_crossing(wave, "sig", 0.5, Edge::kRising, 2));
  EXPECT_FALSE(spice::has_crossing(wave, "sig", 0.5, Edge::kEither, 2));
}

TEST(Crossing, ExactLevelPeakCountsRisingAndFallingOnce) {
  // Up through the level to an exact-level peak sample, then back down:
  // one rising crossing (at the peak sample) and one falling crossing.
  Waveform wave = make_wave({0.0, 1.0, 2.0, 3.0}, {0.0, 0.5, 0.0, -0.5});
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.5, Edge::kRising, 1), 1.0,
              1e-15);
  EXPECT_FALSE(spice::has_crossing(wave, "sig", 0.5, Edge::kRising, 2));
  // Level 0.0: reached exactly at t=2 falling, left again afterwards.
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.0, Edge::kFalling, 1, 0.5),
              2.0, 1e-15);
  EXPECT_FALSE(spice::has_crossing(wave, "sig", 0.0, Edge::kFalling, 2, 0.5));
}

TEST(Crossing, InteriorCrossingsStillFound) {
  Waveform wave = make_wave({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 0.0, 1.0});
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.5, Edge::kRising, 1), 0.5,
              1e-15);
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.5, Edge::kFalling, 1), 1.5,
              1e-15);
  EXPECT_NEAR(spice::cross_time(wave, "sig", 0.5, Edge::kRising, 2), 2.5,
              1e-15);
  EXPECT_FALSE(spice::has_crossing(wave, "sig", 0.5, Edge::kEither, 4));
}

// ------------------------------------------- structured error payload

/// A forward-biased diode that cannot converge in one Newton iteration.
Circuit hard_diode_circuit() {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  spice::NodeId mid = ckt.node("mid");
  ckt.add<Resistor>("R1", a, mid, 10.0);
  ckt.add<Diode>("D1", mid, ckt.gnd());
  return ckt;
}

TEST(ConvergencePayload, NamesWorstRowsOnOpFailure) {
  Circuit ckt = hard_diode_circuit();
  MnaSystem system(ckt);
  spice::OpOptions options;
  options.newton.max_iterations = 1;
  options.newton.gmin_stepping = false;
  options.newton.source_stepping = false;
  try {
    spice::operating_point(system, options);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    ASSERT_TRUE(e.has_diagnostics());
    const ConvergenceDiagnostics& diag = *e.diagnostics();
    EXPECT_EQ(diag.strategy, "plain");
    EXPECT_GT(diag.iterations, 0);
    ASSERT_FALSE(diag.worst_rows.empty());
    for (const auto& row : diag.worst_rows) {
      EXPECT_FALSE(row.name.empty());
    }
    // describe() renders every named row.
    const std::string text = diag.describe();
    EXPECT_NE(text.find(diag.worst_rows.front().name), std::string::npos);
  }
}

TEST(ConvergencePayload, SurvivesCopy) {
  ConvergenceDiagnostics diag;
  diag.strategy = "plain";
  diag.worst_rows.push_back({"v(out)", 1.0, 2.0});
  ConvergenceError original("boom", diag);
  ConvergenceError copy = original;  // exceptions must stay copyable
  ASSERT_TRUE(copy.has_diagnostics());
  EXPECT_EQ(copy.diagnostics()->worst_rows.front().name, "v(out)");
}

// -------------------------------------------------- RunReport accounting

TEST(RunReportOp, StageIterationsSumToTotal) {
  Circuit ckt = hard_diode_circuit();
  MnaSystem system(ckt);
  RunReport report;
  spice::OpOptions options;
  options.report = &report;
  spice::operating_point(system, options);

  EXPECT_EQ(report.analysis, "op");
  ASSERT_FALSE(report.stages.empty());
  EXPECT_GT(report.newton.total_iterations, 0);
  // Satellite invariant: per-stage counts accumulate into the cumulative
  // total instead of clobbering it.
  EXPECT_EQ(report.stage_iterations_total(), report.newton.total_iterations);
  EXPECT_TRUE(report.stages.back().converged);
  // Exactly one solve recorded in the histogram.
  std::uint64_t histogram_solves = 0;
  for (std::uint64_t count : report.newton_iteration_histogram) {
    histogram_solves += count;
  }
  EXPECT_EQ(histogram_solves, 1u);
  // The op phase timer ran.
  EXPECT_GE(report.metrics.get("phase.op").count, 1);
}

TEST(RunReportOp, StatsSinkAndReportAgree) {
  Circuit ckt = hard_diode_circuit();
  MnaSystem system(ckt);
  RunReport report;
  NewtonStats stats;
  spice::OpOptions options;
  options.report = &report;
  options.stats = &stats;
  spice::operating_point(system, options);
  EXPECT_EQ(stats.total_iterations, report.newton.total_iterations);
  EXPECT_EQ(stats.assembles, report.newton.assembles);
}

TEST(RunReportTransient, Fanin16CountsAndBitwiseIdenticalWaveform) {
  // The acceptance circuit: fig11's fan-in-16 hybrid dynamic OR.
  core::DynamicOrConfig config;
  config.fanin = 16;
  config.fanout = 3;
  config.hybrid = true;

  // Reference run, no sink attached.
  core::DynamicOrGate gate_a = core::build_dynamic_or(config);
  core::DynamicOrMetrics plain = core::measure_dynamic_or(gate_a);

  // Instrumented run on a fresh, identical gate.
  core::DynamicOrGate gate_b = core::build_dynamic_or(config);
  RunReport report;
  core::DynamicOrMetrics instrumented =
      core::measure_dynamic_or(gate_b, &report);

  // Bitwise identical results: the sink must not perturb the solve.
  EXPECT_EQ(plain.worst_case_delay, instrumented.worst_case_delay);
  EXPECT_EQ(plain.switching_energy, instrumented.switching_energy);
  EXPECT_EQ(plain.leakage_power, instrumented.leakage_power);

  EXPECT_EQ(report.analysis, "transient");
  EXPECT_GT(report.accepted_steps, 0u);
  EXPECT_GT(report.newton.total_iterations, 0);
  EXPECT_GT(report.stage_count(SteppingStageRecord::Kind::kPlain), 0u);
  EXPECT_GT(report.min_dt, 0.0);
  EXPECT_GE(report.max_dt, report.min_dt);
  EXPECT_EQ(report.lte_reject_count, report.lte_rejects.size());
  for (const auto& reject : report.lte_rejects) {
    EXPECT_GT(reject.dt, 0.0);
    EXPECT_FALSE(reject.worst_name.empty());
  }
  // Histogram covers at least every accepted transient step.
  std::uint64_t histogram_solves = 0;
  for (std::uint64_t count : report.newton_iteration_histogram) {
    histogram_solves += count;
  }
  EXPECT_GE(histogram_solves, report.accepted_steps);

  // The report renders without throwing and mentions the analysis.
  EXPECT_NE(report.summary().find("transient"), std::string::npos);
  std::ostringstream json;
  report.write_json(json);
  EXPECT_NE(json.str().find("\"accepted_steps\""), std::string::npos);
}

TEST(RunReport, ResetClearsEverything) {
  RunReport report;
  report.analysis = "op";
  report.accepted_steps = 3;
  report.record_newton_iterations(4);
  report.stages.push_back({SteppingStageRecord::Kind::kPlain, 0.0, 2, true});
  report.metrics.add_count("x", 1);
  report.reset();
  EXPECT_TRUE(report.analysis.empty());
  EXPECT_EQ(report.accepted_steps, 0u);
  EXPECT_TRUE(report.stages.empty());
  EXPECT_TRUE(report.newton_iteration_histogram.empty());
  EXPECT_TRUE(report.metrics.snapshot().empty());
}

// ------------------------------------------------------------ forensics

TEST(Forensics, TransientFailureDumpsWaveAndNetlist) {
  // NEMFET pull-in driven into non-convergence: the pull-in snap needs
  // tiny steps, and a dt_min floor far above them turns the retry ladder
  // into a terminal failure.
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>(
      "Vg", g, ckt.gnd(),
      SourceWave::pulse(0.0, 1.2, 0.1_ns, 5.0_ps, 5.0_ps, 2.0_ns));
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, tech::nems_90nm(),
                  1.0_um);
  MnaSystem system(ckt);

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "nemsim_forensics")
          .string();
  std::filesystem::remove_all(dir);

  TransientOptions options;
  options.tstop = 1.0_ns;
  options.dt_min = 2.0_ps;   // far above what the pull-in snap needs
  options.newton.max_iterations = 4;
  options.forensics.enabled = true;
  options.forensics.directory = dir;
  options.forensics.tag = "pullin";

  try {
    spice::transient(system, options);
    FAIL() << "expected ConvergenceError from the dt_min floor";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("dt below dt_min"),
              std::string::npos);
    ASSERT_TRUE(e.has_diagnostics());
    const ConvergenceDiagnostics& diag = *e.diagnostics();
    EXPECT_EQ(diag.strategy, "transient-step");
    EXPECT_GT(diag.time, 0.0);
    EXPECT_GT(diag.dt, 0.0);
    ASSERT_FALSE(diag.worst_rows.empty());
    EXPECT_FALSE(diag.worst_rows.front().name.empty());
  }

  namespace fs = std::filesystem;
  EXPECT_TRUE(fs::exists(fs::path(dir) / "pullin.failure.txt"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "pullin.netlist.sp"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "pullin.wave.csv"));
  std::filesystem::remove_all(dir);
}

TEST(Forensics, DisabledWritesNothing) {
  Circuit ckt = hard_diode_circuit();
  spice::ForensicsOptions options;  // enabled defaults to false
  options.directory =
      (std::filesystem::path(::testing::TempDir()) / "nemsim_no_forensics")
          .string();
  const auto written =
      spice::write_failure_forensics(options, ckt, nullptr, "x", nullptr);
  EXPECT_TRUE(written.empty());
  EXPECT_FALSE(std::filesystem::exists(options.directory));
}

// ---------------------------------------- coincident-breakpoint regression

TEST(TransientBreakpoints, TwoIdenticalPulseSourcesRunClean) {
  // Two sources with the exact same PULSE schedule: every breakpoint is
  // duplicated.  The run must not produce zero-length steps (which
  // Waveform::append rejects as a repeated axis value).
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId oa = ckt.node("oa");
  spice::NodeId ob = ckt.node("ob");
  const SourceWave pulse =
      SourceWave::pulse(0.0, 1.0, 1.0_ns, 10.0_ps, 10.0_ps, 2.0_ns, 5.0_ns);
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), pulse);
  ckt.add<VoltageSource>("V2", b, ckt.gnd(), pulse);
  ckt.add<Resistor>("R1", a, oa, 1e3);
  ckt.add<Capacitor>("C1", oa, ckt.gnd(), 1.0_pF);
  ckt.add<Resistor>("R2", b, ob, 1e3);
  ckt.add<Capacitor>("C2", ob, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);

  TransientOptions options;
  options.tstop = 10.0_ns;
  Waveform wave = spice::transient(system, options);
  EXPECT_TRUE(wave.ascending_axis());
  // Both branches are identical, so they must track exactly, and the
  // pulse must be resolved (tau = 1 ns, ~2 ns of charging by t = 3 ns).
  for (double t : {0.5e-9, 2.0e-9, 3.0e-9, 5.0e-9, 9.0e-9}) {
    EXPECT_DOUBLE_EQ(wave.at("v(oa)", t), wave.at("v(ob)", t)) << "t=" << t;
  }
  EXPECT_GT(wave.at("v(oa)", 3.0e-9), 0.8);
  EXPECT_LT(wave.at("v(oa)", 5.9e-9), 0.2);  // discharged before 2nd pulse
}

TEST(TransientBreakpoints, NearCoincidentEdgesAreDeduped) {
  // Edges a few ulps apart (below the relative dedup tolerance but above
  // the old absolute 1e-18 cutoff) must collapse to one breakpoint.
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  spice::NodeId oa = ckt.node("oa");
  spice::NodeId ob = ckt.node("ob");
  const double delay = 0.4;  // seconds-scale axis: ulp(0.4) ~ 5.6e-17
  ckt.add<VoltageSource>(
      "V1", a, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, delay, 1e-3, 1e-3, 0.2));
  ckt.add<VoltageSource>(
      "V2", b, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, delay + 2e-16, 1e-3, 1e-3, 0.2));
  ckt.add<Resistor>("R1", a, oa, 1e3);
  ckt.add<Capacitor>("C1", oa, ckt.gnd(), 1e-6);
  ckt.add<Resistor>("R2", b, ob, 1e3);
  ckt.add<Capacitor>("C2", ob, ckt.gnd(), 1e-6);

  MnaSystem system(ckt);
  const std::vector<double> bps = system.breakpoints(1.0);
  for (std::size_t k = 1; k < bps.size(); ++k) {
    EXPECT_GT(bps[k] - bps[k - 1], 1e-12 * bps[k])
        << "near-coincident breakpoints survived dedup at " << bps[k];
  }

  TransientOptions options;
  options.tstop = 1.0;
  options.dt_initial = 1e-5;
  options.dt_min = 1e-15;
  Waveform wave = spice::transient(system, options);
  EXPECT_TRUE(wave.ascending_axis());
  EXPECT_NEAR(wave.at("v(oa)", 0.55), 1.0, 0.05);
}

}  // namespace
}  // namespace nemsim
