// Tier-2 perf smoke: the quiescent-device bypass must actually pay off on
// the workload it was built for — the structural SRAM column read, where
// 63 of the 64 cells sit at their hold state for the whole transient.
// Asserts counter-level wins (hit rate, nonlinear-eval reduction), not
// wall-clock, so the test is meaningful in any build type.
#include <gtest/gtest.h>

#include "nemsim/core/sram.h"
#include "nemsim/spice/diagnostics.h"

namespace nemsim {
namespace {

TEST(PerfSmoke, BypassHitRateOnIdleSramColumnRead) {
  core::SramColumnConfig config;
  config.n_cells = 64;

  spice::RunReport base;
  const double lat_base =
      core::measure_column_read_latency_structural(config, 0.1, &base);
  ASSERT_GT(base.newton.nonlinear_evals, 0);
  EXPECT_EQ(base.newton.bypassed_evals, 0);

  config.cell.newton.bypass = true;
  config.cell.newton.jacobian_reuse = true;
  spice::RunReport accel;
  const double lat_accel =
      core::measure_column_read_latency_structural(config, 0.1, &accel);

  // The accelerated run reads the same latency (same converged physics).
  EXPECT_NEAR(lat_accel, lat_base, 0.05 * lat_base);

  // Most device evaluations on the idle column replay from cache...
  EXPECT_GT(accel.newton.bypass_hit_rate(), 0.5)
      << "bypassed=" << accel.newton.bypassed_evals
      << " evals=" << accel.newton.nonlinear_evals;
  // ...which must shrink actual nonlinear evaluations by >= 1.25x.
  // (The floor was originally 1.5x, measured while the bypass path
  // fast-resumed at dt/8 after source edges — a defect nemsim::check's
  // tran/bypass contract later caught as a committed trajectory error:
  // the reduction came partly from skipping post-edge steps the
  // reference path resolves.  With the re-ramp restored, the honest
  // ceiling on this workload is bounded by the converge-on-true-residual
  // invariant: every accepted step ends with one bitwise-exact full
  // assembly, ~steps x devices evals that no cache may absorb.
  // Measured reduction is ~1.33x; 1.25 leaves margin without tolerating
  // a regression back to single-slot cache behaviour, which measures
  // ~0.9x here.)
  EXPECT_GE(static_cast<double>(base.newton.nonlinear_evals),
            1.25 * static_cast<double>(accel.newton.nonlinear_evals));
  EXPECT_GT(accel.newton.stale_jacobian_solves, 0);
}

}  // namespace
}  // namespace nemsim
