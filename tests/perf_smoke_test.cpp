// Tier-2 perf smoke: the quiescent-device bypass must actually pay off on
// the workload it was built for — the structural SRAM column read, where
// 63 of the 64 cells sit at their hold state for the whole transient.
// Asserts counter-level wins (hit rate, nonlinear-eval reduction), not
// wall-clock, so the test is meaningful in any build type.
#include <gtest/gtest.h>

#include <chrono>

#include "nemsim/core/sram.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/spice/engine.h"
#include "nemsim/spice/op.h"

namespace nemsim {
namespace {

TEST(PerfSmoke, BypassHitRateOnIdleSramColumnRead) {
  core::SramColumnConfig config;
  config.n_cells = 64;

  spice::RunReport base;
  const double lat_base =
      core::measure_column_read_latency_structural(config, 0.1, &base);
  ASSERT_GT(base.newton.nonlinear_evals, 0);
  EXPECT_EQ(base.newton.bypassed_evals, 0);

  config.cell.newton.bypass = true;
  config.cell.newton.jacobian_reuse = true;
  spice::RunReport accel;
  const double lat_accel =
      core::measure_column_read_latency_structural(config, 0.1, &accel);

  // The accelerated run reads the same latency (same converged physics).
  EXPECT_NEAR(lat_accel, lat_base, 0.05 * lat_base);

  // Most device evaluations on the idle column replay from cache...
  EXPECT_GT(accel.newton.bypass_hit_rate(), 0.5)
      << "bypassed=" << accel.newton.bypassed_evals
      << " evals=" << accel.newton.nonlinear_evals;
  // ...which must shrink actual nonlinear evaluations by >= 1.25x.
  // (The floor was originally 1.5x, measured while the bypass path
  // fast-resumed at dt/8 after source edges — a defect nemsim::check's
  // tran/bypass contract later caught as a committed trajectory error:
  // the reduction came partly from skipping post-edge steps the
  // reference path resolves.  With the re-ramp restored, the honest
  // ceiling on this workload is bounded by the converge-on-true-residual
  // invariant: every accepted step ends with one bitwise-exact full
  // assembly, ~steps x devices evals that no cache may absorb.
  // Measured reduction is ~1.33x; 1.25 leaves margin without tolerating
  // a regression back to single-slot cache behaviour, which measures
  // ~0.9x here.)
  EXPECT_GE(static_cast<double>(base.newton.nonlinear_evals),
            1.25 * static_cast<double>(accel.newton.nonlinear_evals));
  EXPECT_GT(accel.newton.stale_jacobian_solves, 0);
}

TEST(PerfSmoke, KernelStampThroughputOnStructuralColumn) {
  // The lane path must beat the virtual-dispatch path on full sparse
  // assembly of the 64-cell structural column — the workload whose
  // per-J-write CsrMatrix::slot searches it exists to eliminate.  This
  // is a direct A/B of the same assembly on the same system at the same
  // iterate, so the ratio is meaningful in any build type.
  core::SramColumnConfig config;
  config.n_cells = 64;
  core::SramColumn col = core::build_sram_column(config);
  spice::MnaSystem system(col.ckt());
  core::nodeset_column_state(system, col);
  const spice::OpResult op = spice::operating_point(system);
  const linalg::Vector& x = op.raw();

  linalg::CsrMatrix jac = system.make_sparse_jacobian();
  linalg::Vector residual, scale;
  const double dt = 1e-12;
  auto assemble_batch = [&](std::size_t reps) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      EXPECT_TRUE(system.assemble_sparse(x, jac, residual, scale,
                                         spice::AnalysisMode::kTransient,
                                         /*time=*/dt, dt, /*gmin=*/0.0,
                                         /*source_factor=*/1.0));
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  constexpr std::size_t kReps = 40;
  constexpr int kBatches = 3;
  // Warm-up both paths (kernels: builds the plan and resolves CSR slots;
  // virtual: faults in the pattern), then take each path's best batch.
  system.configure_kernels(false);
  assemble_batch(2);
  double virtual_s = 1e300;
  for (int b = 0; b < kBatches; ++b) {
    virtual_s = std::min(virtual_s, assemble_batch(kReps));
  }
  system.configure_kernels(true);
  assemble_batch(2);
  double kernel_s = 1e300;
  for (int b = 0; b < kBatches; ++b) {
    kernel_s = std::min(kernel_s, assemble_batch(kReps));
  }
  system.configure_kernels(false);

  const double speedup = virtual_s / kernel_s;
  RecordProperty("kernel_stamp_speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 1.3) << "virtual " << virtual_s << " s vs kernels "
                          << kernel_s << " s over " << kReps
                          << " assemblies";
}

}  // namespace
}  // namespace nemsim
