// Sparse MNA fast path: reusable sparse LU (symbolic analysis cached,
// numeric-only refactorization), pattern-frozen CSR assembly equivalence
// against the dense reference, dense-vs-sparse Newton equivalence on the
// paper circuits, and determinism of the parallel sweep runners.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/gates.h"
#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/linalg/lu.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/linalg/sparse_lu.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/rng.h"
#include "nemsim/variation/montecarlo.h"

namespace nemsim {
namespace {

using core::DynamicOrConfig;
using core::DynamicOrGate;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

// ------------------------------------------------------------ sparse LU

/// Random diagonally-weighted CSR test matrix (same recipe as the
/// perf_simulator sparse benchmarks).
linalg::CsrMatrix random_csr(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::size_t, std::size_t>> entries;
  for (std::size_t i = 0; i < n; ++i) {
    entries.emplace_back(i, i);
    for (int k = 0; k < 4; ++k) {
      entries.emplace_back(i, rng.index(n));
    }
  }
  linalg::CsrMatrix a(n, std::move(entries));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = a.row_start()[i]; s < a.row_start()[i + 1]; ++s) {
      a.values()[s] = (a.col_index()[s] == i) ? 8.0 : rng.uniform(-1.0, 1.0);
    }
  }
  return a;
}

linalg::Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-2.0, 2.0);
  return b;
}

TEST(SparseLu, FactorSolveMatchesDenseLu) {
  const std::size_t n = 40;
  linalg::CsrMatrix a = random_csr(n, 7);
  const linalg::Vector b = random_vector(n, 8);

  linalg::SparseLuFactorization lu;
  lu.factor(a);
  EXPECT_TRUE(lu.analyzed());
  EXPECT_GE(lu.fill_nonzeros(), a.nonzeros());
  const linalg::Vector x = lu.solve(b);

  linalg::LuDecomposition dense(a.to_dense());
  const linalg::Vector x_ref = dense.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-9 * (1.0 + std::abs(x_ref[i])));
  }
}

TEST(SparseLu, RefactorReusesAnalysisAndMatchesFreshFactor) {
  const std::size_t n = 40;
  linalg::CsrMatrix a = random_csr(n, 21);
  linalg::SparseLuFactorization lu;
  lu.factor(a);

  // Perturb values (same pattern), refactor numerically only.
  Rng rng(22);
  for (double& v : a.values()) v += 0.05 * rng.uniform(-1.0, 1.0);
  ASSERT_TRUE(lu.refactor(a));

  const linalg::Vector b = random_vector(n, 23);
  const linalg::Vector x = lu.solve(b);
  linalg::LuDecomposition dense(a.to_dense());
  const linalg::Vector x_ref = dense.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-9 * (1.0 + std::abs(x_ref[i])));
  }
}

TEST(SparseLu, RefactorRejectsDecayedPivot) {
  // Factor with a comfortably dominant (0,0) pivot, then shrink it far
  // below the off-diagonal: the cached pivot order becomes numerically
  // unstable and refactor must refuse it.
  linalg::CsrMatrix a(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.values()[a.slot(0, 0)] = 10.0;
  a.values()[a.slot(0, 1)] = 1.0;
  a.values()[a.slot(1, 0)] = 1.0;
  a.values()[a.slot(1, 1)] = 10.0;
  linalg::SparseLuFactorization lu;
  lu.factor(a);

  a.values()[a.slot(0, 0)] = 1e-9;
  a.values()[a.slot(0, 1)] = 1000.0;
  EXPECT_FALSE(lu.refactor(a));

  // A fresh factorization re-pivots and solves fine.
  lu.factor(a);
  const linalg::Vector b{1.0, 2.0};
  const linalg::Vector x = lu.solve(b);
  linalg::LuDecomposition dense(a.to_dense());
  const linalg::Vector x_ref = dense.solve(b);
  EXPECT_NEAR(x[0], x_ref[0], 1e-9 * (1.0 + std::abs(x_ref[0])));
  EXPECT_NEAR(x[1], x_ref[1], 1e-9 * (1.0 + std::abs(x_ref[1])));
}

TEST(SparseLu, SingularMatrixThrows) {
  // Column 1 is structurally empty.
  linalg::CsrMatrix a(2, {{0, 0}, {1, 0}});
  a.values()[a.slot(0, 0)] = 1.0;
  a.values()[a.slot(1, 0)] = 2.0;
  linalg::SparseLuFactorization lu;
  EXPECT_THROW(lu.factor(a), SingularMatrixError);
}

TEST(SparseLu, RefactorRejectsForeignPattern) {
  linalg::CsrMatrix a = random_csr(16, 3);
  linalg::CsrMatrix b = random_csr(24, 4);
  linalg::SparseLuFactorization lu;
  lu.factor(a);
  EXPECT_FALSE(lu.refactor(b));
}

// ------------------------------------------------------------ CsrMatrix

TEST(CsrMatrix, SlotLookupAndDuplicateMerge) {
  linalg::CsrMatrix a(3, {{0, 0}, {0, 2}, {0, 0}, {2, 1}});
  EXPECT_EQ(a.nonzeros(), 3u);  // duplicate (0,0) merged
  EXPECT_NE(a.slot(0, 0), linalg::CsrMatrix::npos);
  EXPECT_NE(a.slot(0, 2), linalg::CsrMatrix::npos);
  EXPECT_NE(a.slot(2, 1), linalg::CsrMatrix::npos);
  EXPECT_EQ(a.slot(1, 1), linalg::CsrMatrix::npos);
  EXPECT_EQ(a.slot(0, 1), linalg::CsrMatrix::npos);

  a.values()[a.slot(0, 2)] = 4.0;
  EXPECT_DOUBLE_EQ(a.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  a.zero_values();
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

// --------------------------------------------- assembly equivalence

/// Asserts dense assemble == sparse assemble (Jacobian, residual, scale)
/// at iterate `x` for the given mode.
void expect_assembly_match(const MnaSystem& system, const linalg::Vector& x,
                           spice::AnalysisMode mode, double time, double dt,
                           double gmin) {
  const std::size_t n = system.num_unknowns();
  linalg::Matrix j_dense;
  linalg::Vector f_dense, s_dense;
  system.assemble(x, j_dense, f_dense, s_dense, mode, time, dt, gmin, 1.0);

  linalg::CsrMatrix j_sparse = system.make_sparse_jacobian();
  linalg::Vector f_sparse, s_sparse;
  while (!system.assemble_sparse(x, j_sparse, f_sparse, s_sparse, mode, time,
                                 dt, gmin, 1.0)) {
    j_sparse = system.make_sparse_jacobian();
  }

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(f_dense[i], f_sparse[i], 1e-18 + 1e-12 * std::abs(f_dense[i]))
        << "residual row " << i;
    EXPECT_NEAR(s_dense[i], s_sparse[i], 1e-18 + 1e-12 * std::abs(s_dense[i]))
        << "scale row " << i;
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(j_dense(i, c), j_sparse.at(i, c),
                  1e-18 + 1e-12 * std::abs(j_dense(i, c)))
          << "J(" << i << "," << c << ")";
    }
  }
}

TEST(SparseAssembly, MatchesDenseOnDynamicOr) {
  for (bool hybrid : {false, true}) {
    DynamicOrConfig c;
    c.fanin = 8;
    c.hybrid = hybrid;
    DynamicOrGate gate = core::build_dynamic_or(c);
    MnaSystem system(gate.ckt());

    const linalg::Vector x0 = system.initial_guess();
    expect_assembly_match(system, x0, spice::AnalysisMode::kDcOperatingPoint,
                          0.0, 0.0, 1e-9);

    // At a solved operating point with companion state, transient mode.
    spice::OpResult op = spice::operating_point(system);
    system.begin_step(1e-12, 1e-12);
    expect_assembly_match(system, op.raw(), spice::AnalysisMode::kTransient,
                          1e-12, 1e-12, 1e-15);
  }
}

// ------------------------------------------- Newton dense vs sparse

spice::NewtonOptions forced(spice::JacobianSolver solver) {
  spice::NewtonOptions options;
  options.solver = solver;
  return options;
}

/// Operating points and a short transient must agree between the dense
/// and sparse solver paths within Newton tolerance slack.  `prepare`
/// runs on each system before solving (e.g. nodesets for bistable cells,
/// without which the OP sits on the metastable point and the transient
/// amplifies solver-path rounding into a state flip).
void expect_solver_equivalence(
    const std::function<Circuit()>& make_circuit,
    const std::vector<std::string>& signals, double tstop,
    const std::function<void(Circuit&, MnaSystem&)>& prepare = {}) {
  // Operating point.
  Circuit ckt_dense = make_circuit();
  Circuit ckt_sparse = make_circuit();
  MnaSystem sys_dense(ckt_dense);
  MnaSystem sys_sparse(ckt_sparse);
  if (prepare) {
    prepare(ckt_dense, sys_dense);
    prepare(ckt_sparse, sys_sparse);
  }

  spice::OpOptions op_dense, op_sparse;
  op_dense.newton = forced(spice::JacobianSolver::kDense);
  op_sparse.newton = forced(spice::JacobianSolver::kSparse);
  spice::OpResult r_dense = spice::operating_point(sys_dense, op_dense);
  spice::OpResult r_sparse = spice::operating_point(sys_sparse, op_sparse);
  for (const std::string& sig : signals) {
    EXPECT_NEAR(r_dense.value(sig), r_sparse.value(sig), 2e-6)
        << "OP mismatch on " << sig;
  }

  if (tstop <= 0.0) return;
  spice::TransientOptions tr_dense, tr_sparse;
  tr_dense.tstop = tstop;
  tr_sparse.tstop = tstop;
  tr_dense.newton = forced(spice::JacobianSolver::kDense);
  tr_sparse.newton = forced(spice::JacobianSolver::kSparse);
  spice::Waveform w_dense = spice::transient(sys_dense, tr_dense);
  spice::Waveform w_sparse = spice::transient(sys_sparse, tr_sparse);

  // The adaptive step controller may pick slightly different step trains
  // (different rounding in the linear solver), so compare on a common
  // time grid via interpolation.
  for (const std::string& sig : signals) {
    double worst = 0.0;
    for (int k = 0; k <= 100; ++k) {
      const double t = tstop * k / 100.0;
      const double vd = w_dense.at(sig, t);
      const double vs = w_sparse.at(sig, t);
      worst = std::max(worst, std::abs(vd - vs));
    }
    EXPECT_LT(worst, 5e-3) << "transient mismatch on " << sig;
  }
}

TEST(SolverEquivalence, DynamicOrFanins) {
  for (int fanin : {4, 8, 16}) {
    auto make = [fanin]() {
      DynamicOrConfig c;
      c.fanin = fanin;
      c.hybrid = (fanin == 8);  // cover both variants across the loop
      DynamicOrGate gate = core::build_dynamic_or(c);
      return std::move(*gate.circuit);
    };
    expect_solver_equivalence(make, {"v(dyn)", "v(out)"}, 1.5e-9);
  }
}

TEST(SolverEquivalence, SramCells) {
  for (core::SramKind kind :
       {core::SramKind::kConventional, core::SramKind::kHybrid}) {
    auto make = [kind]() {
      core::SramConfig c;
      c.kind = kind;
      c.stored_one = false;
      core::SramCell cell = core::build_sram_cell(c);
      return std::move(*cell.circuit);
    };
    // Nodeset the stored state (as core/sram.cpp does) so the OP finds a
    // stable attractor rather than the metastable midpoint.
    auto prepare = [](Circuit& ckt, MnaSystem& system) {
      system.set_nodeset(ckt.find_node(core::SramCell::kQl), 0.0);
      system.set_nodeset(ckt.find_node(core::SramCell::kQr), 1.2);
    };
    expect_solver_equivalence(
        make,
        {std::string("v(") + core::SramCell::kQl + ")",
         std::string("v(") + core::SramCell::kQr + ")"},
        1.0e-9, prepare);
  }
}

TEST(SolverEquivalence, SleepTransistorNetwork) {
  // Footer-gated inverter chain: logic block behind an NMOS sleep switch
  // (paper Section 6), driven through one precharge-style input edge.
  auto make = []() {
    Circuit ckt;
    spice::NodeId vdd = ckt.node("vdd");
    spice::NodeId vgnd = ckt.node("vgnd");
    spice::NodeId in = ckt.node("in");
    spice::NodeId sleep = ckt.node("sleep");
    ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
    ckt.add<VoltageSource>("Vsleep", sleep, ckt.gnd(), SourceWave::dc(1.2));
    ckt.add<VoltageSource>(
        "Vin", in, ckt.gnd(),
        SourceWave::pulse(0.0, 1.2, 0.2e-9, 20e-12, 20e-12, 2e-9));
    core::add_inverter_chain(ckt, "CH", in, vdd, vgnd, 6);
    ckt.add<Mosfet>("Msleep", vgnd, sleep, ckt.gnd(), MosPolarity::kNmos,
                    tech::nmos_90nm(), /*width=*/2e-6, /*length=*/1e-7);
    return ckt;
  };
  expect_solver_equivalence(make, {"v(vgnd)"}, 1.0e-9);
}

// ------------------------------------------------ parallel determinism

TEST(ParallelMap, OrderedResultsAndInlineFallback) {
  auto square = [](std::size_t i) { return static_cast<double>(i * i); };
  const std::vector<double> seq = util::parallel_map(40, square, 1);
  const std::vector<double> par = util::parallel_map(40, square, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq[i], static_cast<double>(i * i));
    EXPECT_DOUBLE_EQ(seq[i], par[i]);
  }
  EXPECT_TRUE(util::parallel_map(0, square, 4).empty());
}

TEST(ParallelMap, FirstExceptionPropagates) {
  auto faulty = [](std::size_t i) -> int {
    if (i % 7 == 3) throw InvalidArgument("task " + std::to_string(i));
    return static_cast<int>(i);
  };
  EXPECT_THROW(util::parallel_map(20, faulty, 4), InvalidArgument);
}

Circuit make_divider_inverter() {
  // An inverter biased mid-rail: its output voltage is sensitive to the
  // Vth shifts that the Monte-Carlo draws, which makes thread-count
  // nondeterminism visible immediately.
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  ckt.add<VoltageSource>("Vin", in, ckt.gnd(), SourceWave::dc(0.55));
  core::add_inverter(ckt, "INV", in, out, vdd);
  ckt.add<Resistor>("Rload", out, ckt.gnd(), 1e6);
  return ckt;
}

TEST(ParallelDeterminism, MonteCarloIdenticalAcrossThreadCounts) {
  auto metric = [](Circuit& ckt) {
    MnaSystem system(ckt);
    return spice::operating_point(system).value("v(out)");
  };
  variation::MonteCarloOptions mc;
  mc.trials = 16;
  mc.sigma_fraction = 0.06;

  mc.num_threads = 1;
  auto seq = variation::monte_carlo_parallel(make_divider_inverter, metric, mc);
  mc.num_threads = 4;
  auto par = variation::monte_carlo_parallel(make_divider_inverter, metric, mc);

  ASSERT_EQ(seq.samples.size(), par.samples.size());
  for (std::size_t i = 0; i < seq.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.samples[i], par.samples[i]) << "trial " << i;
  }
  EXPECT_EQ(seq.failures, par.failures);

  // And both match the sequential driver on a shared circuit (same
  // per-trial child RNG streams).
  Circuit shared = make_divider_inverter();
  auto reference = variation::monte_carlo(shared, metric, mc);
  ASSERT_EQ(reference.samples.size(), par.samples.size());
  for (std::size_t i = 0; i < reference.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(reference.samples[i], par.samples[i]) << "trial " << i;
  }
}

TEST(ParallelDeterminism, DcSweepParallelMatchesSequentialCold) {
  auto make = []() { return make_divider_inverter(); };
  auto set_vin = [](Circuit& ckt, double v) {
    ckt.find<VoltageSource>("Vin").set_dc(v);
  };
  const std::vector<double> points = spice::linspace(0.0, 1.2, 13);

  spice::DcSweepOptions options;
  spice::Waveform w1 =
      spice::dc_sweep_parallel(make, set_vin, points, options, 1);
  spice::Waveform w4 =
      spice::dc_sweep_parallel(make, set_vin, points, options, 4);

  // Sequential reference without continuation (cold solves, like the
  // parallel runner).
  options.continuation = false;
  Circuit ckt = make();
  MnaSystem system(ckt);
  spice::Waveform ref = spice::dc_sweep(
      system, [&](double v) { set_vin(ckt, v); }, points, options);

  ASSERT_EQ(w1.num_samples(), points.size());
  ASSERT_EQ(w4.num_samples(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double t = points[i];
    EXPECT_DOUBLE_EQ(w1.at("v(out)", t), w4.at("v(out)", t));
    EXPECT_DOUBLE_EQ(w4.at("v(out)", t), ref.at("v(out)", t));
  }
}

}  // namespace
}  // namespace nemsim
