// Unit tests for the util foundation: units, errors, tables, stats, RNG,
// root finding, interpolation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "nemsim/util/error.h"
#include "nemsim/util/instrument.h"
#include "nemsim/util/interp.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/rng.h"
#include "nemsim/util/root.h"
#include "nemsim/util/stats.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;

// ----------------------------------------------------------------- units

TEST(Units, LiteralsConvertToSi) {
  EXPECT_DOUBLE_EQ(1.0_um, 1e-6);
  EXPECT_DOUBLE_EQ(90.0_nm, 90e-9);
  EXPECT_DOUBLE_EQ(50.0_ps, 50e-12);
  EXPECT_DOUBLE_EQ(1.2_V, 1.2);
  EXPECT_DOUBLE_EQ(110.0_pA, 110e-12);
  EXPECT_DOUBLE_EQ(2.5_fF, 2.5e-15);
  EXPECT_DOUBLE_EQ(1.0_kOhm, 1000.0);
}

TEST(Units, IntegerLiterals) {
  EXPECT_DOUBLE_EQ(90_nm, 90e-9);
  EXPECT_DOUBLE_EQ(5_ns, 5e-9);
  EXPECT_DOUBLE_EQ(3_fF, 3e-15);
}

TEST(Units, ThermalVoltageAt300K) {
  EXPECT_NEAR(phys::thermal_voltage(300.0), 0.025852, 1e-5);
}

TEST(Units, ThermalVoltageScalesWithTemperature) {
  EXPECT_GT(phys::thermal_voltage(400.0), phys::thermal_voltage(300.0));
  EXPECT_NEAR(phys::thermal_voltage(600.0) / phys::thermal_voltage(300.0), 2.0,
              1e-12);
}

// ----------------------------------------------------------------- error

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), InvalidArgument);
}

TEST(Error, HierarchyCatchableAsBase) {
  try {
    throw ConvergenceError("newton died");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "newton died");
  }
}

// ----------------------------------------------------------------- table

TEST(Table, AlignedPrintContainsHeadersAndCells) {
  Table t({"fanin", "delay"});
  t.begin_row().cell(4).cell(1.25);
  t.begin_row().cell(8).cell(2.5);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("fanin"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("8"), std::string::npos);
}

TEST(Table, CsvRoundtripShape) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), InvalidArgument);
}

TEST(Table, ScientificFormat) {
  EXPECT_EQ(Table::format_sci(1.23e-10, 2), "1.23e-10");
}

// ----------------------------------------------------------------- stats

TEST(Stats, RunningStatsMatchesDirectComputation) {
  RunningStats rs;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
}

TEST(Stats, VarianceUndefinedBelowTwoSamples) {
  // A single trial has no measurable spread; the old 0.0 return made it
  // look like a measured zero.  NaN matches the free stddev() contract.
  RunningStats rs;
  EXPECT_FALSE(rs.has_spread());
  EXPECT_TRUE(std::isnan(rs.variance()));
  rs.add(42.0);
  EXPECT_FALSE(rs.has_spread());
  EXPECT_TRUE(std::isnan(rs.variance()));
  EXPECT_TRUE(std::isnan(rs.stddev()));
  rs.add(44.0);
  EXPECT_TRUE(rs.has_spread());
  EXPECT_DOUBLE_EQ(rs.variance(), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(mean(std::span<const double>{}), InvalidArgument);
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, ChildStreamsDifferByIndex) {
  Rng root(7);
  Rng c0 = root.child(0);
  Rng c1 = root.child(1);
  EXPECT_NE(c0.normal(), c1.normal());
}

TEST(Rng, ChildStreamsIndependentOfDrawOrder) {
  Rng root1(9), root2(9);
  root1.normal();  // perturb the parent's engine only
  Rng a = root1.child(3);
  Rng b = root2.child(3);
  EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(123);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

// ------------------------------------------------------------------ root

TEST(Root, BisectFindsSqrt2) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-8);
}

TEST(Root, BrentFindsCosRoot) {
  const double r = brent([](double x) { return std::cos(x); }, 0.0, 3.0);
  EXPECT_NEAR(r, 1.5707963, 1e-7);
}

TEST(Root, BisectRequiresBracket) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               InvalidArgument);
}

TEST(Root, GoldenFindsParabolaMinimum) {
  const double m =
      golden_minimize([](double x) { return (x - 1.5) * (x - 1.5); }, 0.0, 4.0);
  EXPECT_NEAR(m, 1.5, 1e-6);
}

TEST(Root, MonotoneThresholdFindsBoundary) {
  const double t =
      monotone_threshold([](double x) { return x < 0.73; }, 0.0, 1.0, 1e-9);
  EXPECT_NEAR(t, 0.73, 1e-6);
}

TEST(Root, MonotoneThresholdAllFalse) {
  EXPECT_DOUBLE_EQ(
      monotone_threshold([](double) { return false; }, 0.0, 1.0), 0.0);
}

TEST(Root, MonotoneThresholdAllTrue) {
  EXPECT_DOUBLE_EQ(monotone_threshold([](double) { return true; }, 0.0, 1.0),
                   1.0);
}

// ---------------------------------------------------------------- interp

TEST(Interp, LinearBetweenPoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 0.0};
  PiecewiseLinear f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
}

TEST(Interp, ClampsOutsideRange) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {3.0, 4.0};
  PiecewiseLinear f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(9.0), 4.0);
}

TEST(Interp, RejectsUnsortedInput) {
  const std::vector<double> xs = {1.0, 1.0};
  const std::vector<double> ys = {0.0, 1.0};
  EXPECT_THROW(PiecewiseLinear(xs, ys), InvalidArgument);
}

// -------------------------------------------------------------- parallel

/// Sets NEMSIM_THREADS for one scope, restoring the prior value on exit.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* prior = std::getenv("NEMSIM_THREADS");
    if (prior) saved_ = prior;
    had_prior_ = prior != nullptr;
    if (value) {
      setenv("NEMSIM_THREADS", value, 1);
    } else {
      unsetenv("NEMSIM_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_prior_) {
      setenv("NEMSIM_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("NEMSIM_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_prior_ = false;
};

TEST(Parallel, ThreadsEnvValidValueIsUsed) {
  ScopedThreadsEnv env("3");
  EXPECT_EQ(util::default_parallelism(), 3u);
}

TEST(Parallel, ThreadsEnvToleratesWhitespace) {
  ScopedThreadsEnv env(" 2 ");
  EXPECT_EQ(util::default_parallelism(), 2u);
}

TEST(Parallel, ThreadsEnvBadValuesFallBackToHardwareDefault) {
  std::size_t fallback;
  {
    ScopedThreadsEnv env(nullptr);
    fallback = util::default_parallelism();
  }
  ASSERT_GE(fallback, 1u);
  // Negative, zero, garbage, partially-numeric, overflowing and
  // out-of-range values must all fall back — never wrap or throw.
  for (const char* bad : {"-4", "0", "abc", "8x", "", "  ",
                          "99999999999999999999999", "-99999999999999999999",
                          "1048577", "1e3"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(util::default_parallelism(), fallback)
        << "NEMSIM_THREADS=\"" << bad << '"';
  }
}

TEST(Parallel, SubmitAfterShutdownThrows) {
  util::ThreadPool pool(2);
  int ran = 0;
  pool.submit([&] { ran = 1; });
  pool.wait_idle();
  EXPECT_EQ(ran, 1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), Error);
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(Parallel, ParallelMapStillOrdersResults) {
  const auto out =
      util::parallel_map(8, [](std::size_t i) { return 2 * i; }, 3);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i);
}

// ------------------------------------------------------------ instrument

TEST(Instrument, CountersAndTimersAccumulate) {
  util::MetricRegistry registry;
  registry.add_count("events");
  registry.add_count("events", 2);
  registry.add_time("phase", 0.5);
  EXPECT_EQ(registry.get("events").count, 3);
  EXPECT_EQ(registry.get("phase").count, 1);
  EXPECT_DOUBLE_EQ(registry.get("phase").seconds, 0.5);
  EXPECT_EQ(registry.get("missing").count, 0);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "events");  // sorted by name
  registry.clear();
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Instrument, ScopedTimerNullRegistryIsNoop) {
  util::ScopedTimer timer(nullptr, "never");  // must not crash or record
  util::MetricRegistry registry;
  {
    util::ScopedTimer t2(&registry, "scope");
  }
  EXPECT_EQ(registry.get("scope").count, 1);
  EXPECT_GE(registry.get("scope").seconds, 0.0);
}

}  // namespace
}  // namespace nemsim
