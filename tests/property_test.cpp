// Parameterized property tests: invariants that must hold across sweeps
// of geometry, step size, and stimulus - not just at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/linalg/lu.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/rng.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

// ------------------------------------------------- MOSFET geometry sweep

class MosfetWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(MosfetWidthSweep, CurrentProportionalToWidth) {
  const double w = GetParam();
  Mosfet ref("Mref", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             MosPolarity::kNmos, tech::nmos_90nm(), 1.0_um, 0.1_um);
  Mosfet dut("Mdut", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             MosPolarity::kNmos, tech::nmos_90nm(), w, 0.1_um);
  for (double vgs : {0.0, 0.4, 0.8, 1.2}) {
    const double i_ref = ref.drain_current(vgs, 1.2);
    const double i_dut = dut.drain_current(vgs, 1.2);
    EXPECT_NEAR(i_dut / i_ref, w / 1.0_um, 1e-9 + 1e-6 * w / 1.0_um)
        << "vgs=" << vgs;
  }
}

TEST_P(MosfetWidthSweep, GummelSymmetryAcrossBiasGrid) {
  const double w = GetParam();
  Mosfet m("M", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
           MosPolarity::kNmos, tech::nmos_90nm(), w, 0.1_um);
  for (double vg : {0.3, 0.7, 1.1}) {
    for (double vx : {0.05, 0.2, 0.5}) {
      // Terminals (g=vg, d=+vx, s=0) vs the mirror (g=vg, d=0, s=+vx).
      const double fwd = m.drain_current(vg, vx);
      const double rev = m.drain_current(vg - vx, -vx);
      EXPECT_NEAR(fwd, -rev, 1e-15 + 1e-9 * std::abs(fwd))
          << "vg=" << vg << " vx=" << vx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MosfetWidthSweep,
                         ::testing::Values(0.12e-6, 0.3e-6, 1e-6, 5e-6));

// ------------------------------------------------- NEMFET geometry sweep

class NemfetWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(NemfetWidthSweep, PullInVoltageIndependentOfWidth) {
  // The mechanical scaling rule (k, m, c, A all ~ W) keeps Vpi fixed.
  const double w = GetParam();
  const devices::NemsParams p = tech::nems_90nm();
  Nemfet dut("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             NemsPolarity::kN, p, w);
  // Force balance at mid-gap scales out W: check force ratio.
  const double sw = w / p.w_ref;
  Nemfet ref("Xr", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             NemsPolarity::kN, p, p.w_ref);
  EXPECT_NEAR(dut.electrostatic_force(0.4, 1e-9) /
                  ref.electrostatic_force(0.4, 1e-9),
              sw, 1e-9 * sw);
  EXPECT_NEAR(dut.contact_force(2.1e-9) / ref.contact_force(2.1e-9), sw,
              1e-9 * sw);
}

TEST_P(NemfetWidthSweep, OnCurrentProportionalToWidth) {
  const double w = GetParam();
  const devices::NemsParams p = tech::nems_90nm();
  Nemfet dut("X", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             NemsPolarity::kN, p, w);
  Nemfet ref("Xr", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
             NemsPolarity::kN, p, 1.0_um);
  const double ratio =
      dut.drain_current(1.2, 1.2, p.gap0) / ref.drain_current(1.2, 1.2, p.gap0);
  EXPECT_NEAR(ratio, w / 1.0_um, 1e-6 * ratio);
}

INSTANTIATE_TEST_SUITE_P(Widths, NemfetWidthSweep,
                         ::testing::Values(0.3e-6, 0.9e-6, 3e-6));

// ------------------------------------------------ timestep invariance

class TimestepSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimestepSweep, RcResponseInvariantUnderDtMax) {
  const double dt_max = GetParam();
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.1_ns, 1.0_ps, 1.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 3.0_ns;
  options.dt_max = dt_max;
  spice::Waveform wave = spice::transient(system, options);
  // v(out) at t = tau + t0 must be 1 - 1/e regardless of step ceiling.
  EXPECT_NEAR(wave.at("v(out)", 0.1_ns + 1.0_ns), 1.0 - std::exp(-1.0),
              0.01);
}

INSTANTIATE_TEST_SUITE_P(StepCeilings, TimestepSweep,
                         ::testing::Values(5e-12, 20e-12, 60e-12));

// --------------------------------------------- charge conservation sweep

class ChargeConservation : public ::testing::TestWithParam<double> {};

TEST_P(ChargeConservation, SourceChargeEqualsCapacitorCharge) {
  const double cap = GetParam();
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>(
      "V1", in, ckt.gnd(),
      SourceWave::pulse(0.0, 1.0, 0.1_ns, 10.0_ps, 10.0_ps, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), cap);
  MnaSystem system(ckt);
  spice::TransientOptions options;
  options.tstop = 20.0 * 1e3 * cap;  // ~20 tau
  spice::Waveform wave = spice::transient(system, options);
  const double q_src = -spice::integrate(wave, "i(V1)", 0.0, wave.end_time());
  const double v_final = spice::final_value(wave, "v(out)");
  EXPECT_NEAR(q_src, cap * v_final, 0.04 * cap * v_final);
}

INSTANTIATE_TEST_SUITE_P(Caps, ChargeConservation,
                         ::testing::Values(0.1e-12, 1e-12, 10e-12));

// --------------------------------------------------- LU random matrices

class LuRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSweep, ResidualSmallForRandomSystems) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(1234 + n);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 2.0 + static_cast<double>(n) * 0.1;
  }
  linalg::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-1.0, 1.0);
  linalg::Vector x = linalg::solve(a, b);
  linalg::Vector r = a * x;
  r -= b;
  EXPECT_LT(r.inf_norm(), 1e-10 * std::max(1.0, b.inf_norm()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSweep,
                         ::testing::Values(2, 5, 17, 48, 96));

// ---------------------------------------- DC sweep direction invariance

TEST(SweepDirection, CmosTransferHasNoHysteresis) {
  // A CMOS inverter's DC transfer must be identical swept up or down
  // (unlike the NEMS device); this guards against spurious state leaking
  // through the continuation mechanism.
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  auto& vin = ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                                     SourceWave::dc(0.0));
  ckt.add<Mosfet>("Mp", out, in, vdd, MosPolarity::kPmos, tech::pmos_90nm(),
                  0.4_um, 0.1_um);
  ckt.add<Mosfet>("Mn", out, in, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 0.2_um, 0.1_um);
  MnaSystem system(ckt);
  auto up_pts = spice::linspace(0.0, 1.2, 25);
  auto down_pts = spice::linspace(1.2, 0.0, 25);
  spice::Waveform up = spice::dc_sweep(
      system, [&](double v) { vin.set_dc(v); }, up_pts);
  spice::Waveform down = spice::dc_sweep(
      system, [&](double v) { vin.set_dc(v); }, down_pts);
  auto us = up.series("v(out)");
  auto ds = down.series("v(out)");
  for (std::size_t i = 0; i < us.size(); ++i) {
    EXPECT_NEAR(us[i], ds[ds.size() - 1 - i], 1e-6);
  }
}

TEST(SweepDirection, NemsTransferShowsHysteresis) {
  // And the NEMFET must show it: mid-window current differs by decades
  // between the up and down branches.
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(1.2));
  auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, tech::nems_90nm(),
                  1.0_um);
  MnaSystem system(ckt);
  const devices::NemsParams p = tech::nems_90nm();
  const double v_mid = 0.40;  // inside the hysteresis window
  ASSERT_GT(v_mid, p.analytic_pull_out_voltage());
  ASSERT_LT(v_mid, p.analytic_pull_in_voltage());

  auto up_pts = spice::linspace(0.0, v_mid, 21);
  spice::Waveform up = spice::dc_sweep(
      system, [&](double v) { vg.set_dc(v); }, up_pts);
  const double i_up = std::abs(up.series("i(Vd)").back());

  auto down_pts = spice::linspace(1.2, v_mid, 21);
  spice::Waveform down = spice::dc_sweep(
      system, [&](double v) { vg.set_dc(v); }, down_pts);
  const double i_down = std::abs(down.series("i(Vd)").back());
  EXPECT_GT(i_down / i_up, 50.0);
}

// ----------------------------------------------- fanin monotonicity

class FaninSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaninSweep, LeakageGrowsLinearlyWithFanin) {
  // CMOS dynamic OR pull-down leakage ~ fanin * Ioff: the premise of the
  // whole keeper-sizing argument.
  const int fanin = GetParam();
  Circuit ckt;
  spice::NodeId dyn = ckt.node("dyn");
  ckt.add<VoltageSource>("Vdyn", dyn, ckt.gnd(), SourceWave::dc(1.2));
  for (int i = 0; i < fanin; ++i) {
    spice::NodeId in = ckt.node("in" + std::to_string(i));
    ckt.add<VoltageSource>("Vin" + std::to_string(i), in, ckt.gnd(),
                           SourceWave::dc(0.0));
    ckt.add<Mosfet>("M" + std::to_string(i), dyn, in, ckt.gnd(),
                    MosPolarity::kNmos, tech::nmos_90nm(), 0.3_um, 0.1_um);
  }
  MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  const double leak = -op.value("i(Vdyn)");
  const double per_input = leak / fanin;
  // Each 0.3 um input leaks ~0.3 * Ioff(per um).
  EXPECT_NEAR(per_input, 0.3 * 45e-9, 0.3 * 45e-9 * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Fanins, FaninSweep, ::testing::Values(2, 8, 16));

}  // namespace
}  // namespace nemsim
