// Engine-level tests: netlist handling, operating points on linear and
// nonlinear circuits, DC sweeps, homotopy fallbacks, waveform measures.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/op.h"
#include "nemsim/util/error.h"

namespace nemsim {
namespace {

using devices::CurrentSource;
using devices::Diode;
using devices::Resistor;
using devices::SourceWave;
using devices::Vccs;
using devices::Vcvs;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;
using spice::OpResult;

// --------------------------------------------------------------- Circuit

TEST(Circuit, NodeCreationAndLookup) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId a2 = ckt.node("a");
  EXPECT_EQ(a, a2);
  EXPECT_TRUE(ckt.gnd().is_ground());
  EXPECT_EQ(ckt.num_nodes(), 2u);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_THROW(ckt.find_node("missing"), NetlistError);
}

TEST(Circuit, InternalNodesAreUnique) {
  Circuit ckt;
  spice::NodeId a = ckt.internal_node("x");
  spice::NodeId b = ckt.internal_node("x");
  EXPECT_NE(a, b);
}

TEST(Circuit, DuplicateDeviceNameThrows) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  EXPECT_THROW(ckt.add<Resistor>("R1", a, ckt.gnd(), 2e3),
               NetlistError);
}

TEST(Circuit, FindTypedDevice) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  EXPECT_EQ(ckt.find<Resistor>("R1").resistance(), 1e3);
  EXPECT_THROW(ckt.find<VoltageSource>("R1"), NetlistError);
}

// -------------------------------------------------------- Operating point

TEST(Op, ResistorDivider) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(10.0));
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, ckt.gnd(), 3e3);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("mid"), 7.5, 1e-9);
  // Source current: 10 V over 4 kOhm, flowing out of the + terminal.
  EXPECT_NEAR(op.value("i(V1)"), -10.0 / 4e3, 1e-12);
}

TEST(Op, CurrentSourceIntoResistor) {
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<CurrentSource>("I1", ckt.gnd(), a, SourceWave::dc(1e-3));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 2e3);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("a"), 2.0, 1e-9);
}

TEST(Op, VcvsGain) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(0.5));
  ckt.add<Vcvs>("E1", out, ckt.gnd(), in, ckt.gnd(), 4.0);
  ckt.add<Resistor>("RL", out, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("out"), 2.0, 1e-9);
}

TEST(Op, VccsTransconductance) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(1.0));
  // 1 mS from gnd into out: i = gm * v(in).
  ckt.add<Vccs>("G1", ckt.gnd(), out, in, ckt.gnd(), 1e-3);
  ckt.add<Resistor>("RL", out, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("out"), 1.0, 1e-9);
}

TEST(Op, DiodeResistorBias) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(5.0));
  ckt.add<Resistor>("R1", in, a, 1e3);
  ckt.add<Diode>("D1", a, ckt.gnd());
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  const double vd = op.v("a");
  // Forward drop in the usual silicon range and KCL-consistent current.
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.85);
  devices::Diode& d = ckt.find<Diode>("D1");
  double id = 0.0, gd = 0.0;
  d.evaluate(vd, id, gd);
  EXPECT_NEAR(id, (5.0 - vd) / 1e3, 1e-9);
}

TEST(Op, FloatingNodeGuardedByGminFinal) {
  // A node connected only through a capacitor is floating in DC; the
  // gmin_final shunt keeps the matrix solvable and parks it at 0 V.
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  spice::NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<devices::Capacitor>("C1", a, b, 1e-15);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("b"), 0.0, 1e-6);
}

TEST(Op, SeriesDiodesNeedHomotopy) {
  // A string of diodes from a big supply is a classic hard start; the
  // ladder (gmin/source stepping) must get there.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(30.0));
  spice::NodeId prev = in;
  for (int i = 0; i < 8; ++i) {
    spice::NodeId next = ckt.node("n" + std::to_string(i));
    ckt.add<Diode>("D" + std::to_string(i), prev, next);
    prev = next;
  }
  ckt.add<Resistor>("R1", prev, ckt.gnd(), 100.0);
  MnaSystem system(ckt);
  OpResult op = spice::operating_point(system);
  const double i_r = op.v("n7") / 100.0;
  EXPECT_GT(i_r, 0.1);  // most of the 30 V lands on the resistor
}

// -------------------------------------------------------------- DC sweep

TEST(DcSweep, LinearSweepOfDivider) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  auto& v1 = ckt.add<VoltageSource>("V1", in, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  auto points = spice::linspace(0.0, 2.0, 5);
  spice::Waveform wave = spice::dc_sweep(
      system, [&](double v) { v1.set_dc(v); }, points);
  EXPECT_EQ(wave.num_samples(), 5u);
  EXPECT_NEAR(wave.at("v(mid)", 1.0), 0.5, 1e-9);
  EXPECT_NEAR(wave.at("v(mid)", 2.0), 1.0, 1e-9);
}

TEST(DcSweep, LinspaceEndpoints) {
  auto pts = spice::linspace(1.0, 3.0, 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0], 1.0);
  EXPECT_DOUBLE_EQ(pts[1], 2.0);
  EXPECT_DOUBLE_EQ(pts[2], 3.0);
}

// ------------------------------------------------------------- Waveform

TEST(Waveform, MeasurementsOnSyntheticRamp) {
  spice::Waveform w({"sig"});
  linalg::Vector v(1);
  for (int k = 0; k <= 10; ++k) {
    v[0] = 0.1 * k;  // 0 .. 1 over t = 0 .. 10
    w.append(static_cast<double>(k), v);
  }
  EXPECT_NEAR(spice::cross_time(w, "sig", 0.55, spice::Edge::kRising), 5.5,
              1e-12);
  EXPECT_NEAR(spice::integrate(w, "sig", 0.0, 10.0), 5.0, 1e-12);
  EXPECT_NEAR(spice::average(w, "sig", 0.0, 10.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(spice::max_value(w, "sig"), 1.0);
  EXPECT_DOUBLE_EQ(spice::min_value(w, "sig"), 0.0);
  EXPECT_DOUBLE_EQ(spice::final_value(w, "sig"), 1.0);
}

TEST(Waveform, FallingEdgeAndOccurrenceSelection) {
  spice::Waveform w({"sig"});
  linalg::Vector v(1);
  const double samples[] = {0.0, 1.0, 0.0, 1.0, 0.0};
  for (int k = 0; k < 5; ++k) {
    v[0] = samples[k];
    w.append(static_cast<double>(k), v);
  }
  EXPECT_NEAR(spice::cross_time(w, "sig", 0.5, spice::Edge::kFalling, 1), 1.5,
              1e-12);
  EXPECT_NEAR(spice::cross_time(w, "sig", 0.5, spice::Edge::kRising, 2), 2.5,
              1e-12);
  EXPECT_THROW(spice::cross_time(w, "sig", 0.5, spice::Edge::kFalling, 3),
               MeasurementError);
  EXPECT_TRUE(spice::has_crossing(w, "sig", 0.5, spice::Edge::kRising, 2));
  EXPECT_FALSE(spice::has_crossing(w, "sig", 2.0));
}

TEST(Waveform, UnknownSignalThrows) {
  spice::Waveform w({"a"});
  linalg::Vector v(1);
  w.append(0.0, v);
  EXPECT_THROW(w.series("zzz"), MeasurementError);
}

// --------------------------------------------------------------- Sources

TEST(SourceWave, PulseShape) {
  // PULSE(0 1 | delay 1 | rise 1 | fall 1 | width 2)
  SourceWave p = SourceWave::pulse(0.0, 1.0, 1.0, 1.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1.5), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(p.value(3.0), 1.0);   // on plateau
  EXPECT_DOUBLE_EQ(p.value(4.5), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(p.value(9.0), 0.0);   // after the pulse
}

TEST(SourceWave, PeriodicPulseRepeats) {
  SourceWave p = SourceWave::pulse(0.0, 1.0, 0.0, 1.0, 1.0, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(p.value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(p.value(12.0), 1.0);
  EXPECT_DOUBLE_EQ(p.value(19.0), 0.0);
}

TEST(SourceWave, PwlInterpolatesAndClamps) {
  SourceWave p = SourceWave::pwl({{1.0, 0.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1.5), 2.0);
  EXPECT_DOUBLE_EQ(p.value(5.0), 4.0);
}

TEST(SourceWave, BreakpointsWithinRange) {
  SourceWave p = SourceWave::pulse(0.0, 1.0, 1.0, 0.5, 0.5, 1.0);
  std::vector<double> bps;
  p.breakpoints(10.0, bps);
  // delay, end-of-rise, end-of-width, end-of-fall.
  ASSERT_EQ(bps.size(), 4u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0);
  EXPECT_DOUBLE_EQ(bps[1], 1.5);
  EXPECT_DOUBLE_EQ(bps[2], 2.5);
  EXPECT_DOUBLE_EQ(bps[3], 3.0);
}

TEST(SourceWave, InvalidPulseRejected) {
  EXPECT_THROW(SourceWave::pulse(0, 1, 0, 0.0, 1, 1), InvalidArgument);
  EXPECT_THROW(SourceWave::pulse(0, 1, 0, 1, 1, 5, 2.0), InvalidArgument);
}

}  // namespace
}  // namespace nemsim
