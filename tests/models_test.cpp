// Model-layer unit tests: the shared EKV channel math, the capacitor
// companion (integration states), and device parameter validation.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/devices/diode.h"
#include "nemsim/devices/ekv.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
namespace ekv = devices::ekv;

// ------------------------------------------------------------------- ekv

TEST(Ekv, SoftplusLimitsAndMidpoint) {
  EXPECT_DOUBLE_EQ(ekv::softplus(100.0), 100.0);       // linear regime
  EXPECT_NEAR(ekv::softplus(-50.0), std::exp(-50.0), 1e-30);
  EXPECT_NEAR(ekv::softplus(0.0), std::log(2.0), 1e-12);
}

TEST(Ekv, SigmoidLimitsAndSymmetry) {
  EXPECT_DOUBLE_EQ(ekv::sigmoid(100.0), 1.0);
  EXPECT_NEAR(ekv::sigmoid(-50.0), std::exp(-50.0), 1e-30);
  EXPECT_DOUBLE_EQ(ekv::sigmoid(0.0), 0.5);
  EXPECT_NEAR(ekv::sigmoid(2.0) + ekv::sigmoid(-2.0), 1.0, 1e-12);
}

TEST(Ekv, DerivativesMatchFiniteDifferences) {
  ekv::ChannelParams p;
  for (double vgs : {0.1, 0.5, 1.0}) {
    for (double vds : {0.05, 0.6, 1.2}) {
      const double h = 1e-7;
      auto id_at = [&](double g, double d) {
        return ekv::evaluate({g, d}, p).id;
      };
      const ekv::ChannelResult r = ekv::evaluate({vgs, vds}, p);
      EXPECT_NEAR(r.gm, (id_at(vgs + h, vds) - id_at(vgs - h, vds)) / (2 * h),
                  1e-4 * std::abs(r.gm) + 1e-12)
          << vgs << " " << vds;
      EXPECT_NEAR(r.gds,
                  (id_at(vgs, vds + h) - id_at(vgs, vds - h)) / (2 * h),
                  1e-4 * std::abs(r.gds) + 1e-12);
      // Parameter sensitivities.
      ekv::ChannelParams pp = p, pm = p;
      pp.vth += h;
      pm.vth -= h;
      EXPECT_NEAR(r.did_dvth,
                  (ekv::evaluate({vgs, vds}, pp).id -
                   ekv::evaluate({vgs, vds}, pm).id) /
                      (2 * h),
                  1e-4 * std::abs(r.did_dvth) + 1e-12);
      pp = pm = p;
      pp.n += h;
      pm.n -= h;
      EXPECT_NEAR(r.did_dn,
                  (ekv::evaluate({vgs, vds}, pp).id -
                   ekv::evaluate({vgs, vds}, pm).id) /
                      (2 * h),
                  1e-4 * std::abs(r.did_dn) + 1e-10);
    }
  }
}

TEST(Ekv, SubthresholdExponentialStrongInversionQuadratic) {
  ekv::ChannelParams p;
  p.eta = 0.0;
  p.lambda = 0.0;
  // Weak inversion: one n*vt*ln10 of gate drive = one decade.
  const double s = p.n * p.vt * std::log(10.0);
  const double i1 = ekv::evaluate({p.vth - 0.45, 1.2}, p).id;
  const double i2 = ekv::evaluate({p.vth - 0.45 + s, 1.2}, p).id;
  EXPECT_NEAR(i2 / i1, 10.0, 0.3);
  // Strong inversion saturation: Id ~ (Vgs - Vth)^2.
  const double ia = ekv::evaluate({p.vth + 0.4, 1.2}, p).id;
  const double ib = ekv::evaluate({p.vth + 0.8, 1.2}, p).id;
  EXPECT_NEAR(ib / ia, 4.0, 0.25);
}

// ------------------------------------------------------------- companion

TEST(CapCompanion, DcIsOpenCircuit) {
  // In DC mode (no StampContext handy here) the behaviour is already
  // covered by engine tests; check the state machine instead.
  devices::CapCompanion c(1e-12);
  EXPECT_DOUBLE_EQ(c.capacitance(), 1e-12);
  c.set_capacitance(2e-12);
  EXPECT_DOUBLE_EQ(c.capacitance(), 2e-12);
}

// ------------------------------------------------------------ validation

TEST(Validation, PassivesRejectBadValues) {
  using spice::NodeId;
  EXPECT_THROW(devices::Resistor("R", NodeId{1}, NodeId{0}, 0.0),
               InvalidArgument);
  EXPECT_THROW(devices::Resistor("R", NodeId{1}, NodeId{0}, -5.0),
               InvalidArgument);
  EXPECT_THROW(devices::Capacitor("C", NodeId{1}, NodeId{0}, -1e-15),
               InvalidArgument);
  EXPECT_THROW(devices::Inductor("L", NodeId{1}, NodeId{0}, 0.0),
               InvalidArgument);
  EXPECT_NO_THROW(devices::Capacitor("C", NodeId{1}, NodeId{0}, 0.0));
}

TEST(Validation, MosfetRejectsBadGeometry) {
  using spice::NodeId;
  EXPECT_THROW(devices::Mosfet("M", NodeId{1}, NodeId{2}, NodeId{0},
                               devices::MosPolarity::kNmos,
                               tech::nmos_90nm(), 0.0, 0.1_um),
               InvalidArgument);
  devices::Mosfet m("M", NodeId{1}, NodeId{2}, NodeId{0},
                    devices::MosPolarity::kNmos, tech::nmos_90nm(), 1.0_um,
                    0.1_um);
  EXPECT_THROW(m.set_width(-1e-6), InvalidArgument);
}

TEST(Validation, NemfetRejectsBadParameters) {
  using spice::NodeId;
  devices::NemsParams bad = tech::nems_90nm();
  bad.spring_k = 0.0;
  EXPECT_THROW(devices::Nemfet("X", NodeId{1}, NodeId{2}, NodeId{0},
                               devices::NemsPolarity::kN, bad, 1.0_um),
               InvalidArgument);
  bad = tech::nems_90nm();
  bad.gap0 = -1e-9;
  EXPECT_THROW(devices::Nemfet("X", NodeId{1}, NodeId{2}, NodeId{0},
                               devices::NemsPolarity::kN, bad, 1.0_um),
               InvalidArgument);
}

TEST(Validation, DiodeRejectsBadParams) {
  using spice::NodeId;
  devices::DiodeParams p;
  p.is = 0.0;
  EXPECT_THROW(devices::Diode("D", NodeId{1}, NodeId{0}, p),
               InvalidArgument);
}

// ---------------------------------------------------------------- diode

TEST(DiodeModel, ExponentialLawAndContinuation) {
  devices::Diode d("D", spice::NodeId{1}, spice::NodeId{0});
  double i1 = 0.0, g1 = 0.0, i2 = 0.0, g2 = 0.0;
  d.evaluate(0.5, i1, g1);
  d.evaluate(0.5 + 0.025852 * std::log(10.0), i2, g2);
  EXPECT_NEAR(i2 / i1, 10.0, 0.05);  // one decade per vt*ln10
  // The linear continuation above 40 vt must be slope-continuous.
  const double v_crit = 40.0 * 0.025852;
  double ia = 0.0, ga = 0.0, ib = 0.0, gb = 0.0;
  d.evaluate(v_crit - 1e-6, ia, ga);
  d.evaluate(v_crit + 1e-6, ib, gb);
  EXPECT_NEAR(ga, gb, 1e-4 * ga);
  EXPECT_NEAR(ib - ia, ga * 2e-6, 1e-6 * ia);
  // Reverse bias saturates at -Is (plus the shunt term).
  double ir = 0.0, gr = 0.0;
  d.evaluate(-1.0, ir, gr);
  EXPECT_NEAR(ir, -d.params().is - d.params().gmin_shunt, 1e-16);
}

// ----------------------------------------------------------- NEMS params

TEST(NemsParamsModel, PullInScalesWithStiffnessAndGap) {
  devices::NemsParams p = tech::nems_90nm();
  const double v0 = p.analytic_pull_in_voltage();
  devices::NemsParams stiff = p;
  stiff.spring_k *= 4.0;
  EXPECT_NEAR(stiff.analytic_pull_in_voltage() / v0, 2.0, 1e-9);
  devices::NemsParams wide = p;
  wide.area *= 4.0;
  EXPECT_NEAR(wide.analytic_pull_in_voltage() / v0, 0.5, 1e-9);
}

TEST(NemsParamsModel, ElectrostaticGapIncludesOxide) {
  devices::NemsParams p = tech::nems_90nm();
  EXPECT_NEAR(p.electrostatic_gap(), p.gap0 + p.tox / p.eps_ox, 1e-15);
}

}  // namespace
}  // namespace nemsim
