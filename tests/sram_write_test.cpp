// SRAM write-operation tests (completing the cell's operation set:
// hold + read are covered in sram_test).
#include <gtest/gtest.h>

#include "nemsim/core/sram.h"

namespace nemsim {
namespace {

using namespace nemsim::core;

TEST(SramWrite, EveryKindIsWritableBothDirections) {
  for (SramKind kind :
       {SramKind::kConventional, SramKind::kDualVt, SramKind::kAsymmetric,
        SramKind::kHybrid, SramKind::kHybridPullupOnly}) {
    for (bool one : {false, true}) {
      SramConfig c;
      c.kind = kind;
      c.stored_one = one;
      WriteResult w = measure_write(c);
      EXPECT_TRUE(w.flipped)
          << sram_kind_name(kind) << " stored_one=" << one;
      EXPECT_GT(w.latency, 0.0);
      EXPECT_LT(w.latency, 0.5e-9);
    }
  }
}

TEST(SramWrite, TooShortPulseDoesNotFlip) {
  SramConfig c;
  WriteResult w = measure_write(c, /*wl_pulse=*/2e-12);
  // 2 ps cannot move the storage node far enough against the keeper
  // inverter (the builder rejects anything even shorter).
  EXPECT_FALSE(w.flipped);
}

TEST(SramWrite, MinPulseOrderingSane) {
  SramConfig conv;
  const double p_conv = measure_min_write_pulse(conv);
  EXPECT_GT(p_conv, 1e-12);
  EXPECT_LT(p_conv, 1e-9);
}

TEST(SramWrite, HybridWritable) {
  // The hybrid cell's beams must follow an electrical write and hold the
  // new value after the wordline closes.
  SramConfig c;
  c.kind = SramKind::kHybrid;
  const double p = measure_min_write_pulse(c);
  EXPECT_LT(p, 1e-9);
}

TEST(SramWrite, RejectsDegeneratePulse) {
  SramConfig c;
  EXPECT_THROW(measure_write(c, 1e-13), InvalidArgument);
}

}  // namespace
}  // namespace nemsim
