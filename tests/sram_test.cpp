// SRAM cell tests (paper Section 5): construction, hold/read behaviour,
// SNM extraction, and the Figure 14/15 orderings at reduced resolution.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/core/sram.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/spice/op.h"
#include "nemsim/tech/cards.h"

namespace nemsim {
namespace {

using core::build_sram_cell;
using core::ButterflyCurves;
using core::extract_snm;
using core::measure_butterfly;
using core::measure_read_latency;
using core::measure_standby_leakage;
using core::measure_standby_leakage_precharged;
using core::SramBenchMode;
using core::SramCell;
using core::SramConfig;
using core::SramKind;

TEST(SramBuild, ConventionalCellHasPaperDeviceNames) {
  SramCell cell = build_sram_cell(SramConfig{});
  // The bitcell is the "Xcell" instance, so the paper's device names live
  // under its hierarchical scope.
  for (const char* name : {"Xcell.MAL", "Xcell.MAR", "Xcell.MNL",
                           "Xcell.MNR", "Xcell.MPL", "Xcell.MPR"}) {
    EXPECT_NO_THROW(cell.ckt().find_device(name)) << name;
  }
  EXPECT_TRUE(cell.ckt().has_instance("Xcell"));
}

TEST(SramBuild, HybridUsesNemsCore) {
  SramConfig c;
  c.kind = SramKind::kHybrid;
  SramCell cell = build_sram_cell(c);
  EXPECT_NO_THROW(cell.ckt().find<devices::Nemfet>("Xcell.XNL"));
  EXPECT_NO_THROW(cell.ckt().find<devices::Nemfet>("Xcell.XPR"));
  // Access stays CMOS.
  EXPECT_NO_THROW(cell.ckt().find<devices::Mosfet>("Xcell.MAL"));
}

TEST(SramBuild, DualVtUsesHighVtCore) {
  SramConfig c;
  c.kind = SramKind::kDualVt;
  SramCell cell = build_sram_cell(c);
  EXPECT_GT(cell.ckt().find<devices::Mosfet>("Xcell.MNL").params().vth0,
            tech::nmos_90nm().vth0 + 0.05);
  // ... and low-Vt access ("both high- and low-Vt employed" [25]).
  EXPECT_LT(cell.ckt().find<devices::Mosfet>("Xcell.MAL").params().vth0,
            tech::nmos_90nm().vth0 - 0.01);
}

TEST(SramBuild, KindNames) {
  EXPECT_STREQ(core::sram_kind_name(SramKind::kConventional), "Conv.");
  EXPECT_STREQ(core::sram_kind_name(SramKind::kHybrid), "Hybrid");
}

TEST(SramHold, EveryKindHoldsBothValues) {
  for (SramKind kind : {SramKind::kConventional, SramKind::kDualVt,
                        SramKind::kAsymmetric, SramKind::kHybrid}) {
    for (bool one : {false, true}) {
      SramConfig c;
      c.kind = kind;
      c.stored_one = one;
      // Standby leakage internally asserts the cell held its state.
      EXPECT_GT(measure_standby_leakage(c), 0.0)
          << core::sram_kind_name(kind) << " stored_one=" << one;
    }
  }
}

// ---------------------------------------------------------------- SNM

TEST(Snm, ExtractorOnIdealSquareCurves) {
  // Two ideal inverter curves forming a 0.4 V x 0.4 V eye on each side:
  // f: 1 -> 0 step at x = 0.5; g identical.  SNM of the symmetric ideal
  // staircase butterfly = 0.4 (limited by the lobe geometry).
  std::vector<double> vin, fwd, rev;
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    vin.push_back(x);
    const double y = x < 0.5 ? 1.0 : 0.0;
    fwd.push_back(y);
    rev.push_back(y);
  }
  const double snm = extract_snm(vin, fwd, rev);
  EXPECT_NEAR(snm, 0.5, 0.02);
}

TEST(Snm, DegenerateCurvesThrow) {
  std::vector<double> vin = {0.0, 1.0};
  EXPECT_THROW(extract_snm(vin, {1.0}, {1.0, 0.0}), InvalidArgument);
}

TEST(Snm, ShiftedCurvesShrinkMargin) {
  // Squeeze one curve toward the other: SNM must shrink.
  std::vector<double> vin, fwd, rev, fwd2;
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    vin.push_back(x);
    fwd.push_back(x < 0.5 ? 1.0 : 0.0);
    fwd2.push_back(x < 0.5 ? 0.6 : 0.0);  // degraded high level
    rev.push_back(x < 0.5 ? 1.0 : 0.0);
  }
  EXPECT_LT(extract_snm(vin, fwd2, rev), extract_snm(vin, fwd, rev));
}

TEST(SramSnm, PaperOrderingAtFigure14) {
  // Conv > Hybrid > DualVt/Asym, with Hybrid ~ 14 % below Conv.
  auto snm_of = [](SramKind kind) {
    SramConfig c;
    c.kind = kind;
    return measure_butterfly(c, 41).snm;
  };
  const double conv = snm_of(SramKind::kConventional);
  const double hybrid = snm_of(SramKind::kHybrid);
  const double dual = snm_of(SramKind::kDualVt);
  const double asym = snm_of(SramKind::kAsymmetric);
  EXPECT_LT(hybrid, conv);
  EXPECT_GT(hybrid, asym);
  EXPECT_NEAR(hybrid / conv, 0.86, 0.08);
  EXPECT_LT(dual, conv);
}

// ------------------------------------------------------------- latency

TEST(SramLatency, AllKindsReadWithinNanosecond) {
  for (SramKind kind : {SramKind::kConventional, SramKind::kDualVt,
                        SramKind::kAsymmetric, SramKind::kHybrid}) {
    SramConfig c;
    c.kind = kind;
    const double lat = measure_read_latency(c);
    EXPECT_GT(lat, 1e-12) << core::sram_kind_name(kind);
    EXPECT_LT(lat, 1e-9) << core::sram_kind_name(kind);
  }
}

TEST(SramLatency, HybridSlowerThanConventional) {
  SramConfig conv;
  SramConfig hyb;
  hyb.kind = SramKind::kHybrid;
  const double lc = measure_read_latency(conv);
  const double lh = measure_read_latency(hyb);
  EXPECT_GT(lh, lc);
  EXPECT_LT(lh, 2.5 * lc);  // "minor latency cost"
}

TEST(SramLatency, AsymmetricReadsDifferPerStoredValue) {
  SramConfig c;
  c.kind = SramKind::kAsymmetric;
  c.stored_one = false;
  const double l0 = measure_read_latency(c);
  c.stored_one = true;
  const double l1 = measure_read_latency(c);
  // The high-Vt NR slows the stored-one read: asymmetry by design.
  EXPECT_GT(std::abs(l1 - l0) / l0, 0.02);
}

TEST(SramLatency, LargerBitlineCapIsSlower) {
  SramConfig c;
  const double l_small = measure_read_latency(c);
  c.bitline_cap *= 2.0;
  const double l_big = measure_read_latency(c);
  // Not fully proportional: the wordline edge and sense margin overhead
  // are capacitance-independent.
  EXPECT_GT(l_big, 1.35 * l_small);
}

// ------------------------------------------------------------- leakage

TEST(SramLeakage, PaperOrderingAtFigure15) {
  auto leak_of = [](SramKind kind) {
    SramConfig c;
    c.kind = kind;
    return measure_standby_leakage(c);
  };
  const double conv = leak_of(SramKind::kConventional);
  const double dual = leak_of(SramKind::kDualVt);
  const double asym = leak_of(SramKind::kAsymmetric);
  const double hybrid = leak_of(SramKind::kHybrid);
  // Hybrid wins by a large factor; the low-leakage CMOS variants sit in
  // between.
  EXPECT_LT(hybrid, 0.2 * conv);
  EXPECT_LT(dual, conv);
  EXPECT_LT(asym, conv);
  EXPECT_LT(hybrid, dual);
  EXPECT_LT(hybrid, asym);
}

TEST(SramLeakage, PrechargedConventionHigher) {
  // Driving the bitlines adds access-transistor leakage paths.
  SramConfig c;
  EXPECT_GT(measure_standby_leakage_precharged(c),
            measure_standby_leakage(c));
}

}  // namespace
}  // namespace nemsim
