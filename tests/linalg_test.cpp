// Unit tests for the dense/sparse linear algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/linalg/lu.h"
#include "nemsim/linalg/matrix.h"
#include "nemsim/linalg/polyfit.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/util/error.h"

namespace nemsim::linalg {
namespace {

// ---------------------------------------------------------------- Vector

TEST(Vector, ArithmeticAndNorms) {
  Vector a{1.0, -2.0, 3.0};
  Vector b{1.0, 1.0, 1.0};
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], -1.0);
  EXPECT_DOUBLE_EQ(a.inf_norm(), 3.0);
  EXPECT_NEAR(a.two_norm(), std::sqrt(14.0), 1e-12);
  EXPECT_DOUBLE_EQ(dot(a, b), 2.0);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a(3), b(2);
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW(dot(a, b), InvalidArgument);
}

TEST(Vector, BoundsCheckedAt) {
  Vector a(2);
  EXPECT_THROW(a.at(5), InvalidArgument);
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, MultiplyVector) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{1.0, 1.0};
  Vector y = m * x;
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyMatrixAgainstIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Matrix i = Matrix::identity(2);
  Matrix p = m * i;
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, InfNormIsMaxRowSum) {
  Matrix m{{1.0, -2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.inf_norm(), 7.0);
}

// -------------------------------------------------------------------- LU

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector b{3.0, 5.0};
  Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Vector b{2.0, 3.0};
  Vector x = solve(a, b);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition lu(a), SingularMatrixError);
}

TEST(Lu, DeterminantWithPermutationSign) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, BadlyRowScaledSystemStillAccurate) {
  // Rows differing by 12 orders of magnitude (amperes vs newtons in the
  // electromechanical MNA); equilibration must keep the solve accurate.
  Matrix a{{1e-12, 2e-12}, {3.0, -1.0}};
  Vector b{3e-12, 2.0};
  Vector x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(Lu, RandomRoundTrip) {
  const std::size_t n = 20;
  Matrix a(n, n);
  unsigned state = 12345;
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = next();
    a(r, r) += 5.0;  // diagonally dominant => well conditioned
  }
  Vector x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = next();
  Vector b = a * x_true;
  Vector x = solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Lu, RcondEstimatePositive) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  LuDecomposition lu(a);
  EXPECT_GT(lu.rcond_estimate(), 0.0);
  EXPECT_LE(lu.rcond_estimate(), 1.0);
}

// --------------------------------------------------------------- polyfit

TEST(Polyfit, ExactQuadraticRecovery) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x);
  }
  Polynomial p = polyfit(xs, ys, 2);
  EXPECT_NEAR(p.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(p.coefficients()[1], -3.0, 1e-9);
  EXPECT_NEAR(p.coefficients()[2], 0.5, 1e-9);
  EXPECT_NEAR(fit_rms_error(p, xs, ys), 0.0, 1e-9);
}

TEST(Polyfit, DerivativeEvaluation) {
  Polynomial p({1.0, 2.0, 3.0});  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p.derivative_at(2.0), 14.0);
  Polynomial d = p.derivative();
  EXPECT_DOUBLE_EQ(d(2.0), 14.0);
}

TEST(Polyfit, UnderdeterminedThrows) {
  std::vector<double> xs = {1.0, 2.0};
  std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), InvalidArgument);
}

// ---------------------------------------------------------------- sparse

TEST(Sparse, TripletsSumDuplicates) {
  SparseMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 4.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Sparse, CancellingStampsDropEntry) {
  SparseMatrix m(2, 2, {{0, 1, 5.0}, {0, 1, -5.0}, {0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
}

TEST(Sparse, MatVecMatchesDense) {
  Matrix d{{2.0, 0.0, 1.0}, {0.0, 3.0, 0.0}, {1.0, 0.0, 4.0}};
  SparseMatrix s = SparseMatrix::from_dense(d);
  Vector x{1.0, 2.0, 3.0};
  Vector ys = s.multiply(x);
  Vector yd = d * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Sparse, ToDenseRoundTrip) {
  Matrix d{{0.0, 1.5}, {2.5, 0.0}};
  Matrix back = SparseMatrix::from_dense(d).to_dense();
  EXPECT_DOUBLE_EQ(back(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(back(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(back(0, 0), 0.0);
}

TEST(Sparse, GaussSeidelSolvesDiagonallyDominant) {
  Matrix d{{4.0, 1.0, 0.0}, {1.0, 5.0, 2.0}, {0.0, 2.0, 6.0}};
  SparseMatrix s = SparseMatrix::from_dense(d);
  Vector x_true{1.0, -2.0, 0.5};
  Vector b = d * x_true;
  Vector x = s.gauss_seidel(b, 1e-12);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SparseLu, MatchesDenseSolve) {
  Matrix d{{4.0, 1.0, 0.0, 2.0},
           {1.0, 5.0, 2.0, 0.0},
           {0.0, 2.0, 6.0, 1.0},
           {2.0, 0.0, 1.0, 7.0}};
  SparseMatrix s = SparseMatrix::from_dense(d);
  Vector b{1.0, -2.0, 3.0, 0.5};
  Vector xs = s.lu_solve(b);
  Vector xd = solve(d, b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
}

TEST(SparseLu, RequiresPivoting) {
  Matrix d{{0.0, 2.0}, {3.0, 0.0}};
  SparseMatrix s = SparseMatrix::from_dense(d);
  Vector b{4.0, 6.0};
  Vector x = s.lu_solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, SingularThrows) {
  Matrix d{{1.0, 2.0}, {2.0, 4.0}};
  SparseMatrix s = SparseMatrix::from_dense(d);
  Vector b{1.0, 2.0};
  EXPECT_THROW(s.lu_solve(b), SingularMatrixError);
}

TEST(SparseLu, LargeLadderNetwork) {
  // Tridiagonal (resistor ladder) system: genuinely sparse, where the
  // sparse path shines.  Verify against the known solution of
  // -x[i-1] + 2 x[i] - x[i+1] = h^2 (discrete Poisson with f = 1).
  const std::size_t n = 200;
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({i, i, 2.0});
    if (i > 0) trips.push_back({i, i - 1, -1.0});
    if (i + 1 < n) trips.push_back({i, i + 1, -1.0});
  }
  SparseMatrix a(n, n, std::move(trips));
  Vector b(n, 1.0);
  Vector x = a.lu_solve(b);
  // Residual check.
  Vector r = a.multiply(x);
  r -= b;
  EXPECT_LT(r.inf_norm(), 1e-10);
  // Parabolic profile: maximum at the center.
  EXPECT_GT(x[n / 2], x[5]);
}

TEST(Sparse, OutOfRangeTripletThrows) {
  EXPECT_THROW(SparseMatrix(2, 2, {{5, 0, 1.0}}), InvalidArgument);
}

}  // namespace
}  // namespace nemsim::linalg
