// Netlist parser tests: value suffixes, every element type, round trips
// through the exporter, and error reporting.
#include <gtest/gtest.h>

#include "nemsim/core/cells.h"
#include "nemsim/devices/diode.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/netlist_export.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/tech/cards.h"
#include "nemsim/tech/netlist_parser.h"

namespace nemsim {
namespace {

using tech::parse_netlist;
using tech::parse_spice_value;

// ----------------------------------------------------------- value parse

TEST(SpiceValue, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_value("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("10n"), 10e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1.2u"), 1.2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("100p"), 100e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("-4K"), -4000.0);
  // Unit letters after the magnitude are tolerated ("10pF").
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5pF"), 5e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("+0.5"), 0.5);
}

TEST(SpiceValue, BareUnitLettersAreIgnored) {
  // A unit tag with no magnitude prefix is plain SPICE ("DC 1V") and
  // must parse as the bare number.
  EXPECT_DOUBLE_EQ(parse_spice_value("1V"), 1.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("100A"), 100.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("3Hz"), 3.0);
  // "M" is milli even when a unit follows: classic SPICE gotcha.
  EXPECT_DOUBLE_EQ(parse_spice_value("1MHz"), 1e-3);
  // Any other alphabetic tag is likewise ignored, matching ngspice.
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5x"), 1.5);
}

TEST(SpiceValue, BadValuesThrow) {
  EXPECT_THROW(parse_spice_value("abc"), NetlistError);
  EXPECT_THROW(parse_spice_value("1k5"), NetlistError);  // digits after suffix
  EXPECT_THROW(parse_spice_value("+"), NetlistError);
  EXPECT_THROW(parse_spice_value("1.5k!"), NetlistError);
}

// ----------------------------------------------------------- basic parse

TEST(Parser, DividerSolvesCorrectly) {
  spice::Circuit ckt = parse_netlist(R"(* divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.end
)");
  spice::MnaSystem system(ckt);
  EXPECT_NEAR(spice::operating_point(system).v("mid"), 7.5, 1e-9);
}

TEST(Parser, CommentsDirectivesAndBlankLinesIgnored) {
  spice::Circuit ckt = parse_netlist(
      "* title line\n\n.option whatever\nR1 a 0 1k ; trailing comment\n"
      "V1 a 0 DC 1\n.end\nR2 ignored 0 1k\n");
  EXPECT_EQ(ckt.num_devices(), 2u);  // R2 after .end must be dropped
}

TEST(Parser, PulseAndSineSources) {
  spice::Circuit ckt = parse_netlist(R"(*
V1 a 0 PULSE(0 1.2 1n 20p 20p 500p 2n)
V2 b 0 SIN(0.6 0.2 1meg)
R1 a 0 1k
R2 b 0 1k
.end
)");
  const auto& v1 = ckt.find<devices::VoltageSource>("V1");
  EXPECT_DOUBLE_EQ(v1.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v1.value(1.3e-9), 1.2);  // on the plateau
  EXPECT_DOUBLE_EQ(v1.value(3.3e-9), 1.2);  // second period
  const auto& v2 = ckt.find<devices::VoltageSource>("V2");
  EXPECT_NEAR(v2.value(0.25e-6), 0.8, 1e-9);  // offset + peak
}

TEST(Parser, MosfetWithCardOverrides) {
  spice::Circuit ckt = parse_netlist(R"(*
Vd d 0 DC 1.2
Vg g 0 DC 1.2
M1 d g 0 NMOS W=2u L=0.1u
.end
)");
  const auto& m = ckt.find<devices::Mosfet>("M1");
  EXPECT_DOUBLE_EQ(m.width(), 2e-6);
  EXPECT_DOUBLE_EQ(m.params().vth0, tech::nmos_90nm().vth0);
  // And it conducts about 2x the 1 um Table-1 Ion.
  spice::MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_NEAR(-op.value("i(Vd)"), 2.0 * 1110e-6, 0.15 * 2.0 * 1110e-6);
}

TEST(Parser, NemfetParsesAndPullsIn) {
  spice::Circuit ckt = parse_netlist(R"(*
Vd d 0 DC 1.2
Vg g 0 DC 1.2
X1 d g 0 NEMFET_N W=1u
.end
)");
  spice::MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  const auto& x = ckt.find<devices::Nemfet>("X1");
  EXPECT_GT(op.x(x.unknown_x()), 0.9 * x.params().gap0);
}

TEST(Parser, DiodeAndControlledSources) {
  spice::Circuit ckt = parse_netlist(R"(*
V1 in 0 DC 1
E1 e 0 in 0 2.0
G1 0 gi in 0 1m
Rg gi 0 1k
D1 in 0 IS=1e-12 N=1.5
.end
)");
  EXPECT_DOUBLE_EQ(ckt.find<devices::Diode>("D1").params().n, 1.5);
  spice::MnaSystem system(ckt);
  spice::OpResult op = spice::operating_point(system);
  EXPECT_NEAR(op.v("e"), 2.0, 1e-9);
  EXPECT_NEAR(op.v("gi"), 1.0, 1e-9);
}

// ------------------------------------------------------------ round trip

TEST(Parser, RoundTripThroughExporter) {
  // Build, export, re-parse, and compare operating points.
  spice::Circuit original;
  spice::NodeId in = original.node("in");
  spice::NodeId mid = original.node("mid");
  original.add<devices::VoltageSource>("V1", in, original.gnd(),
                                       devices::SourceWave::dc(1.2));
  original.add<devices::Resistor>("R1", in, mid, 2.2e3);
  original.add<devices::Capacitor>("C1", mid, original.gnd(), 10e-15);
  original.add<devices::Mosfet>("M1", mid, in, original.gnd(),
                                devices::MosPolarity::kNmos,
                                tech::nmos_90nm(), 0.5e-6, 1e-7);
  const std::string text = spice::netlist_string(original);

  spice::Circuit reparsed = parse_netlist(text);
  EXPECT_EQ(reparsed.num_devices(), original.num_devices());

  spice::MnaSystem s1(original), s2(reparsed);
  const double v1 = spice::operating_point(s1).v("mid");
  const double v2 = spice::operating_point(s2).v("mid");
  EXPECT_NEAR(v1, v2, 1e-6);
}

TEST(Parser, ParameterizedSubcktRoundTripKeepsOverrides) {
  // A builder-defined cell instantiated with NON-default parameters must
  // survive export -> parse: the exporter synthesizes {KEY} placeholders
  // for the cell body, so the instance card's overrides reapply on the
  // way back in.
  spice::Circuit original;
  spice::NodeId in = original.node("in");
  spice::NodeId out = original.node("out");
  spice::NodeId vdd = original.node("vdd");
  original.add<devices::VoltageSource>("Vdd", vdd, original.gnd(),
                                       devices::SourceWave::dc(1.2));
  original.add<devices::VoltageSource>("Vin", in, original.gnd(),
                                       devices::SourceWave::dc(0.55));
  original.instantiate(core::inverter_cell(), "X1",
                       {in, out, vdd, original.gnd()},
                       {{"WP", 0.55e-6}, {"WN", 0.3e-6}});
  original.add<devices::Resistor>("Rl", out, original.gnd(), 1e9);

  const std::string text = spice::netlist_string(original);
  // The definition body must carry placeholders, not baked-in defaults.
  EXPECT_NE(text.find("{WP}"), std::string::npos) << text;
  EXPECT_NE(text.find("{WN}"), std::string::npos) << text;

  spice::Circuit reparsed = parse_netlist(text);
  ASSERT_EQ(reparsed.num_devices(), original.num_devices());
  EXPECT_DOUBLE_EQ(reparsed.find<devices::Mosfet>("X1.MP").width(), 0.55e-6);
  EXPECT_DOUBLE_EQ(reparsed.find<devices::Mosfet>("X1.MN").width(), 0.3e-6);

  spice::MnaSystem s1(original), s2(reparsed);
  const double v1 = spice::operating_point(s1).v("out");
  const double v2 = spice::operating_point(s2).v("out");
  EXPECT_NEAR(v1, v2, 1e-9);
}

// ---------------------------------------------------------------- errors

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("* t\nR1 a 0 1k\nQ9 x y z\n.end\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, MalformedLinesThrow) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), NetlistError);     // missing value
  EXPECT_THROW(parse_netlist("V1 a 0 PULSE(0 1)\n"), NetlistError);
  EXPECT_THROW(parse_netlist("M1 d g 0 BJT W=1u\n"), NetlistError);
  EXPECT_THROW(parse_netlist("X1 d g 0 NEMFET_N FOO\n"), NetlistError);
  EXPECT_THROW(parse_netlist("R1 a 0 1k\nR1 a 0 2k\n"), NetlistError);
}

}  // namespace
}  // namespace nemsim
