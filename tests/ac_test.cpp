// AC (small-signal) analysis tests: canonical filters against closed
// forms, amplifier gain against hand analysis, and the NEMFET's
// electromechanical resonance.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nemsim/devices/controlled.h"
#include "nemsim/devices/mosfet.h"
#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/passives.h"
#include "nemsim/devices/sources.h"
#include "nemsim/linalg/complex.h"
#include "nemsim/spice/ac.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/units.h"

namespace nemsim {
namespace {

using namespace nemsim::literals;
using devices::Capacitor;
using devices::CurrentSource;
using devices::Inductor;
using devices::Mosfet;
using devices::MosPolarity;
using devices::Nemfet;
using devices::NemsPolarity;
using devices::Resistor;
using devices::SourceWave;
using devices::VoltageSource;
using spice::Circuit;
using spice::MnaSystem;

// --------------------------------------------------------- complex linalg

TEST(ComplexLinalg, SolveKnownSystem) {
  using linalg::Complex;
  linalg::CMatrix a(2, 2);
  a(0, 0) = Complex(1, 1);
  a(0, 1) = Complex(0, -1);
  a(1, 0) = Complex(2, 0);
  a(1, 1) = Complex(1, 0);
  linalg::CVector x_true(2);
  x_true[0] = Complex(1, -2);
  x_true[1] = Complex(0.5, 3);
  linalg::CVector b = a.multiply(x_true);
  linalg::CVector x = linalg::solve(a, b);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-12);
}

TEST(ComplexLinalg, SingularThrows) {
  linalg::CMatrix a(2, 2);
  a(0, 0) = a(0, 1) = a(1, 0) = a(1, 1) = linalg::Complex(1, 1);
  linalg::CVector b(2);
  EXPECT_THROW(linalg::solve(a, b), SingularMatrixError);
}

TEST(ComplexLinalg, Logspace) {
  auto f = spice::logspace(1.0, 1e3, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[0], 1.0, 1e-12);
  EXPECT_NEAR(f[1], 10.0, 1e-9);
  EXPECT_NEAR(f[3], 1e3, 1e-6);
}

// -------------------------------------------------------------- filters

TEST(Ac, RcLowpassPole) {
  // R = 1k, C = 1 pF: f_3dB = 1/(2 pi R C) ~ 159 MHz.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId out = ckt.node("out");
  auto& vin = ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                                     SourceWave::dc(0.0));
  vin.set_ac(1.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, ckt.gnd(), 1.0_pF);
  MnaSystem system(ckt);

  const double f3 = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-12);
  const std::vector<double> freqs = {f3 / 100.0, f3, 100.0 * f3};
  spice::AcResult ac = spice::ac_analysis(system, freqs);

  EXPECT_NEAR(ac.magnitude("v(out)", 0), 1.0, 1e-3);          // passband
  EXPECT_NEAR(ac.magnitude("v(out)", 1), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(ac.magnitude("v(out)", 2), 0.01, 1e-3);          // -40 dB
  EXPECT_NEAR(ac.phase_deg("v(out)", 1), -45.0, 0.5);
}

TEST(Ac, RlcSeriesResonance) {
  // L = 1 uH, C = 1 nF: f0 = 1/(2 pi sqrt(LC)) ~ 5.03 MHz; at resonance
  // the full source voltage appears across R.
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId a = ckt.node("a");
  spice::NodeId out = ckt.node("out");
  auto& vin = ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                                     SourceWave::dc(0.0));
  vin.set_ac(1.0);
  ckt.add<Inductor>("L1", in, a, 1.0_uH);
  ckt.add<Capacitor>("C1", a, out, 1.0_nF);
  ckt.add<Resistor>("R1", out, ckt.gnd(), 10.0);
  MnaSystem system(ckt);

  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-6 * 1e-9));
  spice::AcResult ac =
      spice::ac_analysis(system, std::vector<double>{f0 / 10.0, f0, 10.0 * f0});
  EXPECT_NEAR(ac.magnitude("v(out)", 1), 1.0, 1e-3);   // on resonance
  EXPECT_LT(ac.magnitude("v(out)", 0), 0.2);           // below
  EXPECT_LT(ac.magnitude("v(out)", 2), 0.2);           // above
}

TEST(Ac, CapacitorBlocksDcInductorPassesIt) {
  Circuit ckt;
  spice::NodeId in = ckt.node("in");
  spice::NodeId mid = ckt.node("mid");
  auto& vin = ckt.add<VoltageSource>("Vin", in, ckt.gnd(),
                                     SourceWave::dc(0.0));
  vin.set_ac(1.0);
  ckt.add<Inductor>("L1", in, mid, 1.0_uH);
  ckt.add<Resistor>("R1", mid, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  spice::AcResult ac =
      spice::ac_analysis(system, std::vector<double>{1.0, 1e9});
  EXPECT_NEAR(ac.magnitude("v(mid)", 0), 1.0, 1e-4);  // inductor ~ short
  EXPECT_LT(ac.magnitude("v(mid)", 1), 0.2);          // inductor blocks
}

// ------------------------------------------------------------ amplifiers

TEST(Ac, CommonSourceGainMatchesGmRl) {
  // NMOS biased in saturation with a drain resistor; small-signal gain
  // ~ -gm * (RL || ro).
  Circuit ckt;
  spice::NodeId vdd = ckt.node("vdd");
  spice::NodeId g = ckt.node("g");
  spice::NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("Vdd", vdd, ckt.gnd(), SourceWave::dc(1.2));
  auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.6));
  vg.set_ac(1.0);
  ckt.add<Resistor>("RL", vdd, d, 2e3);
  ckt.add<Mosfet>("M1", d, g, ckt.gnd(), MosPolarity::kNmos,
                  tech::nmos_90nm(), 1.0_um, 0.1_um);
  MnaSystem system(ckt);
  spice::AcResult ac =
      spice::ac_analysis(system, std::vector<double>{1e3});

  // Independent estimate of gm and gds by finite differences of the model.
  Mosfet probe("probe", spice::NodeId{1}, spice::NodeId{2}, spice::NodeId{0},
               MosPolarity::kNmos, tech::nmos_90nm(), 1.0_um, 0.1_um);
  // Need the actual bias of the drain from the OP embedded in the AC run:
  // recompute it.
  spice::OpResult op = spice::operating_point(system);
  const double vd = op.v("d");
  const double h = 1e-5;
  const double gm =
      (probe.drain_current(0.6 + h, vd) - probe.drain_current(0.6 - h, vd)) /
      (2.0 * h);
  const double gds =
      (probe.drain_current(0.6, vd + h) - probe.drain_current(0.6, vd - h)) /
      (2.0 * h);
  const double expected_gain = gm / (1.0 / 2e3 + gds);
  EXPECT_NEAR(ac.magnitude("v(d)", 0), expected_gain,
              0.02 * expected_gain);
  // Inverting stage: output ~180 degrees from input at low frequency.
  EXPECT_NEAR(std::abs(ac.phase_deg("v(d)", 0)), 180.0, 1.0);
}

TEST(Ac, QuietCircuitIsSilent) {
  // No AC excitation anywhere: response identically zero.
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(1.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  MnaSystem system(ckt);
  spice::AcResult ac =
      spice::ac_analysis(system, std::vector<double>{1e6});
  EXPECT_EQ(ac.magnitude("v(a)", 0), 0.0);
}

// --------------------------------------------- NEMS resonator (ref [22])

TEST(Ac, NemfetBeamResonance) {
  // Bias the beam below pull-in and shake the gate: the displacement
  // response peaks at the (spring-softened) mechanical resonance and
  // rolls off above it.
  Circuit ckt;
  spice::NodeId d = ckt.node("d");
  spice::NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(0.05));
  auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(), SourceWave::dc(0.25));
  vg.set_ac(0.01);
  ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, tech::nems_90nm(),
                  1.0_um);
  MnaSystem system(ckt);

  const devices::NemsParams p = tech::nems_90nm();
  const double f0 =
      std::sqrt(p.spring_k / p.mass) / (2.0 * std::numbers::pi);
  auto freqs = spice::logspace(f0 / 100.0, 100.0 * f0, 41);
  spice::AcResult ac = spice::ac_analysis(system, freqs);
  auto mags = ac.magnitude_series("X1.x");

  // Low-frequency response is quasi-static and finite.
  EXPECT_GT(mags.front(), 0.0);
  // High-frequency response is mass-dominated: strongly attenuated.
  EXPECT_LT(mags.back(), 0.05 * mags.front());
  // A resonance peak exists above the static response (zeta ~ 0.6 gives
  // only a slight peak: 1/(2 zeta sqrt(1-zeta^2)) ~ 1.04, shaved further
  // by the log-grid sampling) ...
  const auto peak_it = std::max_element(mags.begin(), mags.end());
  EXPECT_GT(*peak_it, 1.005 * mags.front());
  // ... and it sits near the mechanical resonance, not at the ends.
  const double f_peak =
      freqs[static_cast<std::size_t>(peak_it - mags.begin())];
  EXPECT_GT(f_peak, f0 / 4.0);
  EXPECT_LT(f_peak, 4.0 * f0);
  // And the electrical side sees it too: gate current dips/peaks around
  // the same region rather than being a pure capacitor line.
  auto imag = ac.magnitude_series("i(Vg)");
  EXPECT_GT(*std::max_element(imag.begin(), imag.end()), 0.0);
}

TEST(Ac, DeviceWithoutAcModelThrows) {
  // A bare current source has an AC model, but we can exercise the
  // default-throw path with a tiny local device class.
  class NoAc : public spice::Device {
   public:
    explicit NoAc(std::string name) : Device(std::move(name)) {}
    void stamp(spice::StampContext&) const override {}
  };
  Circuit ckt;
  spice::NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V1", a, ckt.gnd(), SourceWave::dc(0.0));
  ckt.add<Resistor>("R1", a, ckt.gnd(), 1e3);
  ckt.add<NoAc>("U1");
  ckt.add<NoAc>("U2");
  MnaSystem system(ckt);

  // Structured error contract: the pre-solve capability scan rejects the
  // circuit before the bias point runs, names every incapable device in
  // the message, and records an "ac-incapable-device" finding per device
  // in the attached report.
  spice::RunReport report;
  spice::AcOptions options;
  options.report = &report;
  try {
    spice::ac_analysis(system, std::vector<double>{1e6}, options);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pre-solve capability check"), std::string::npos);
    EXPECT_NE(what.find("2 device(s)"), std::string::npos);
    EXPECT_NE(what.find("'U1'"), std::string::npos);
    EXPECT_NE(what.find("'U2'"), std::string::npos);
  }
  ASSERT_EQ(report.lint_findings.size(), 2u);
  EXPECT_EQ(report.lint_findings[0].rule, "ac-incapable-device");
  EXPECT_EQ(report.lint_findings[0].subject, "U1");
  EXPECT_EQ(report.lint_findings[1].subject, "U2");
  // The scan fires before any Newton work: no op phase was recorded.
  EXPECT_EQ(report.newton.total_iterations, 0);
}

}  // namespace
}  // namespace nemsim
