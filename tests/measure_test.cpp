// Waveform measurement primitives: windowed extrema at interpolated
// boundaries, exact RMS of piecewise-linear traces, and crossing /
// delay edge cases (regression coverage for the window-edge asymmetry
// and coincident-crossing fixes).
#include <gtest/gtest.h>

#include <cmath>

#include "nemsim/linalg/matrix.h"
#include "nemsim/spice/measure.h"
#include "nemsim/spice/waveform.h"
#include "nemsim/util/error.h"

namespace nemsim {
namespace {

/// Unit ramp 0 -> 1 over t = 0 .. 10, sampled at integer times.
spice::Waveform unit_ramp() {
  spice::Waveform w({"sig"});
  linalg::Vector v(1);
  for (int k = 0; k <= 10; ++k) {
    v[0] = 0.1 * k;
    w.append(static_cast<double>(k), v);
  }
  return w;
}

// ------------------------------------------------- window-edge extrema

TEST(Measure, ExtremaIncludeInterpolatedWindowEndpoints) {
  // Window boundaries fall between samples: on a monotone ramp the
  // extrema are attained exactly at the interpolated endpoints.  Both
  // ends must use the same interpolation the integral semantics promise
  // (the old code saw only whole samples, clipping max and min
  // asymmetrically depending on which side of the window they sat).
  spice::Waveform w = unit_ramp();
  EXPECT_DOUBLE_EQ(spice::max_value(w, "sig", 2.5, 7.5), 0.75);
  EXPECT_DOUBLE_EQ(spice::min_value(w, "sig", 2.5, 7.5), 0.25);
}

TEST(Measure, ExtremaOnWindowNarrowerThanOneSampleInterval) {
  // Window entirely inside one sample interval: no sample lands in it,
  // so both extrema come from the interpolated endpoints alone.
  spice::Waveform w = unit_ramp();
  EXPECT_DOUBLE_EQ(spice::max_value(w, "sig", 3.25, 3.75), 0.375);
  EXPECT_DOUBLE_EQ(spice::min_value(w, "sig", 3.25, 3.75), 0.325);
}

TEST(Measure, ExtremaWindowClampsToSampledSpan) {
  spice::Waveform w = unit_ramp();
  // Overhanging window clamps; extrema match the full trace.
  EXPECT_DOUBLE_EQ(spice::max_value(w, "sig", 0.0, 99.0), 1.0);
  // Window entirely outside the sampled span is rejected, not clamped
  // into a silent full-trace answer.
  EXPECT_THROW(spice::max_value(w, "sig", 20.0, 30.0), InvalidArgument);
  EXPECT_THROW(spice::min_value(w, "sig", 20.0, 30.0), InvalidArgument);
}

// ----------------------------------------------------------------- rms

TEST(Measure, RmsOfUnitRampIsOneOverSqrtThree) {
  spice::Waveform w = unit_ramp();
  EXPECT_NEAR(spice::rms(w, "sig", 0.0, 10.0), 1.0 / std::sqrt(3.0), 1e-12);
}

TEST(Measure, RmsIsExactOnInterpolatedSubWindow) {
  // v(t) = t/10, so rms over [a, b] = sqrt((b^3 - a^3) / (300 (b - a))).
  // Boundaries between samples exercise the per-segment quadrature.
  spice::Waveform w = unit_ramp();
  const double a = 2.5, b = 7.5;
  const double expected = std::sqrt((b * b * b - a * a * a) / (300.0 * (b - a)));
  EXPECT_NEAR(spice::rms(w, "sig", a, b), expected, 1e-12);
}

TEST(Measure, RmsOfConstantIsTheConstant) {
  spice::Waveform w({"sig"});
  linalg::Vector v(1);
  v[0] = -0.7;
  w.append(0.0, v);
  w.append(5.0, v);
  EXPECT_NEAR(spice::rms(w, "sig", 0.0, 5.0), 0.7, 1e-12);
}

// ----------------------------------------------- crossings and delays

TEST(Measure, PropagationDelayOfCoincidentCrossingsIsZero) {
  // Launch and arrival signals cross their levels at the same instant:
  // the arrival search starts AT the launch time (closed window start),
  // so the measured delay is exactly zero rather than skipping to a
  // later crossing or throwing.
  spice::Waveform w({"a", "b"});
  linalg::Vector v(2);
  const double va[] = {0.0, 1.0, 0.0};
  for (int k = 0; k < 3; ++k) {
    v[0] = va[k];
    v[1] = va[k];
    w.append(static_cast<double>(k), v);
  }
  EXPECT_DOUBLE_EQ(spice::propagation_delay(w, "a", 0.5, spice::Edge::kRising,
                                            "b", 0.5, spice::Edge::kRising),
                   0.0);
}

TEST(Measure, PropagationDelayAcrossEdges) {
  // b lags a by one time unit; 50 % rising-to-rising delay is 1.
  spice::Waveform w({"a", "b"});
  linalg::Vector v(2);
  const double va[] = {0.0, 1.0, 1.0, 1.0};
  const double vb[] = {0.0, 0.0, 1.0, 1.0};
  for (int k = 0; k < 4; ++k) {
    v[0] = va[k];
    v[1] = vb[k];
    w.append(static_cast<double>(k), v);
  }
  EXPECT_NEAR(spice::propagation_delay(w, "a", 0.5, spice::Edge::kRising, "b",
                                       0.5, spice::Edge::kRising),
              1.0, 1e-12);
}

TEST(Measure, SampleLandingOnLevelCountsOnce) {
  // 0, 0.5, 1: the sample at t=1 sits exactly on the 0.5 level.  It is
  // the first (and only) rising crossing — the interval leaving it must
  // not report a second one.
  spice::Waveform w({"sig"});
  linalg::Vector v(1);
  const double vs[] = {0.0, 0.5, 1.0};
  for (int k = 0; k < 3; ++k) {
    v[0] = vs[k];
    w.append(static_cast<double>(k), v);
  }
  EXPECT_NEAR(spice::cross_time(w, "sig", 0.5, spice::Edge::kRising, 1), 1.0,
              1e-12);
  EXPECT_FALSE(spice::has_crossing(w, "sig", 0.5, spice::Edge::kRising, 2));
}

}  // namespace
}  // namespace nemsim
