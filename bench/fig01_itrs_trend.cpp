// Figure 1 reproduction: CMOS technology scaling trend and its impact on
// subthreshold leakage (ITRS-style roadmap series: Vdd, Vth, Ioff vs
// technology node).
#include <iostream>

#include "nemsim/tech/itrs.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;

  std::cout << "Figure 1: technology scaling trend (ITRS-style HP logic)\n\n";
  Table t({"node (nm)", "year", "Vdd (V)", "Vth (V)", "Vth/Vdd",
           "Ioff (nA/um)"});
  for (const auto& n : tech::itrs_trend()) {
    t.begin_row()
        .cell(n.node_nm)
        .cell(n.year)
        .cell(n.vdd, 3)
        .cell(n.vth, 3)
        .cell(n.vth / n.vdd, 3)
        .cell(n.ioff_na_per_um, 3);
  }
  t.print(std::cout);

  std::cout << "\nSubthreshold leakage grows "
            << Table::format(tech::leakage_growth_factor(), 3)
            << "x from 250 nm to 32 nm while Vth/Vdd rises - the squeeze "
               "that motivates NEMS-CMOS integration.\n";
  return 0;
}
