// Batched Monte-Carlo benchmark: SNM spread of the Figure 14 hybrid
// butterfly under threshold variation, 64 trials, three drivers:
//
//   rebuild_per_trial    the pre-compile workflow — every trial builds
//                        both half-cell testbench circuits and their
//                        MnaSystems from scratch
//   compile_once_batch   compile() both testbenches once, per trial
//                        install the variation draw as a parameter-bank
//                        overlay (bitwise-identical samples by contract)
//   compile_once_reuse   same, plus reuse_newton_workspace (persistent
//                        solver arrays; close but not bitwise)
//
// Emits BENCH_mc_batch.json (path overridable as argv[1]) with honest
// wall-clock for each arm plus the setup-work ledger: the batched arms
// build 2 circuits + 2 systems total where the rebuild arm builds
// 2 * trials of each.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "nemsim/core/sram.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/compile.h"
#include "nemsim/spice/dcsweep.h"
#include "nemsim/util/rng.h"
#include "nemsim/util/table.h"
#include "nemsim/variation/montecarlo.h"

namespace {

using namespace nemsim;
using core::SramBenchMode;
using core::SramCell;
using core::SramConfig;
using spice::Circuit;
using spice::CompiledCircuit;

constexpr std::size_t kTrials = 64;
constexpr std::size_t kPoints = 121;
constexpr double kSigma = 0.06;
constexpr std::uint64_t kSeed = 20070604;

/// One half-cell butterfly testbench (read condition, storage node
/// driven by "Vsweep"), as half_cell_transfer builds it.
Circuit make_half_cell(bool drive_ql) {
  SramConfig config;
  config.kind = core::SramKind::kHybrid;
  SramBenchMode mode;
  mode.drive_bitlines = true;
  mode.wordline = config.vdd;
  SramCell cell = core::build_sram_cell(config, mode);
  Circuit ckt = std::move(cell.ckt());
  const char* driven = drive_ql ? SramCell::kQl : SramCell::kQr;
  ckt.add<devices::VoltageSource>("Vsweep", ckt.find_node(driven), ckt.gnd(),
                                  devices::SourceWave::dc(0.0));
  return ckt;
}

const char* sensed_signal(bool drive_ql) {
  return drive_ql ? "v(Xcell.qr)" : "v(Xcell.ql)";
}

struct ArmResult {
  std::string name;
  double wall_s = 0.0;
  std::size_t circuits_built = 0;
  std::size_t systems_built = 0;
  std::vector<double> samples;

  double mean() const {
    double s = 0.0;
    for (double v : samples) s += v;
    return s / static_cast<double>(samples.size());
  }
  double stddev() const {
    const double m = mean();
    double s = 0.0;
    for (double v : samples) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples.size() - 1));
  }
};

/// Rebuild-per-trial arm: the legacy Monte-Carlo shape — fresh circuits
/// and MnaSystems every trial.
ArmResult run_rebuild_arm(const std::vector<double>& points) {
  ArmResult arm;
  arm.name = "rebuild_per_trial";
  const Rng root(kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    std::vector<double> curves[2];
    for (int side = 0; side < 2; ++side) {
      const bool drive_ql = side == 0;
      Circuit ckt = make_half_cell(drive_ql);
      // Both testbenches share the device build order, so a re-derived
      // child stream applies the identical draw to each.
      Rng stream = root.child(trial);
      variation::apply_vth_variation(ckt, kSigma, stream);
      spice::MnaSystem system(ckt);
      ++arm.circuits_built;
      ++arm.systems_built;
      auto& vsweep = ckt.find<devices::VoltageSource>("Vsweep");
      spice::DcSweepOptions o;
      o.lint = lint::LintMode::kOff;
      const spice::Waveform sweep = spice::dc_sweep(
          system, [&](double v) { vsweep.set_dc(v); }, points, o);
      curves[side] = sweep.series(sensed_signal(drive_ql));
    }
    arm.samples.push_back(core::extract_snm(points, curves[0], curves[1]));
  }
  const auto t1 = std::chrono::steady_clock::now();
  arm.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return arm;
}

/// Compile-once arm: both testbenches compiled up front, per-trial draws
/// installed as bank overlays.  Setup (the two compiles) is inside the
/// timed region — the comparison is end-to-end.
ArmResult run_batch_arm(const std::vector<double>& points,
                        bool reuse_workspace) {
  ArmResult arm;
  arm.name =
      reuse_workspace ? "compile_once_reuse_workspace" : "compile_once_batch";
  const Rng root(kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  spice::CompileOptions co;
  co.lint = lint::LintMode::kOff;
  co.reuse_newton_workspace = reuse_workspace;
  CompiledCircuit fwd = spice::compile(make_half_cell(true), co);
  CompiledCircuit rev = spice::compile(make_half_cell(false), co);
  arm.circuits_built = 2;
  arm.systems_built = 2;
  CompiledCircuit* sides[2] = {&fwd, &rev};
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    std::vector<double> curves[2];
    for (int side = 0; side < 2; ++side) {
      CompiledCircuit& cc = *sides[side];
      Rng stream = root.child(trial);
      cc.set_overlay(
          variation::vth_variation_patch(cc.circuit(), kSigma, stream));
      auto& vsweep = cc.circuit().find<devices::VoltageSource>("Vsweep");
      const spice::Waveform sweep = cc.run_dc_sweep(
          [&](double v) { vsweep.set_dc(v); }, points);
      curves[side] = sweep.series(sensed_signal(side == 0));
    }
    arm.samples.push_back(core::extract_snm(points, curves[0], curves[1]));
  }
  fwd.clear_overlay();
  rev.clear_overlay();
  const auto t1 = std::chrono::steady_clock::now();
  arm.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return arm;
}

void write_json(const std::string& path, const std::vector<ArmResult>& arms,
                bool bitwise_match, double speedup, double setup_reduction) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"benchmark\": \"mc_batch_butterfly\",\n"
     << "  \"cell\": \"hybrid\",\n"
     << "  \"trials\": " << kTrials << ",\n"
     << "  \"sweep_points\": " << kPoints << ",\n"
     << "  \"sigma_fraction\": " << kSigma << ",\n"
     << "  \"seed\": " << kSeed << ",\n"
     << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    os << "    {\"name\": \"" << a.name << "\", \"wall_s\": " << a.wall_s
       << ", \"circuits_built\": " << a.circuits_built
       << ", \"mna_systems_built\": " << a.systems_built
       << ", \"snm_mean_mV\": " << a.mean() * 1e3
       << ", \"snm_std_mV\": " << a.stddev() * 1e3 << "}"
       << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"bitwise_match_rebuild_vs_batch\": "
     << (bitwise_match ? "true" : "false") << ",\n"
     << "  \"wall_speedup_batch_vs_rebuild\": " << speedup << ",\n"
     << "  \"setup_work_reduction\": " << setup_reduction << "\n"
     << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1] : std::string("BENCH_mc_batch.json");
  std::cout << "Batched Monte-Carlo: hybrid SRAM butterfly SNM under "
            << kSigma * 100 << " % Vth variation, " << kTrials
            << " trials\n\n";

  const std::vector<double> points =
      spice::linspace(0.0, SramConfig{}.vdd, kPoints);
  std::vector<ArmResult> arms;
  arms.push_back(run_rebuild_arm(points));
  arms.push_back(run_batch_arm(points, /*reuse_workspace=*/false));
  arms.push_back(run_batch_arm(points, /*reuse_workspace=*/true));

  bool bitwise = arms[0].samples.size() == arms[1].samples.size();
  for (std::size_t i = 0; bitwise && i < arms[0].samples.size(); ++i) {
    bitwise = arms[0].samples[i] == arms[1].samples[i];
  }
  const double speedup = arms[0].wall_s / arms[1].wall_s;
  const double setup_reduction =
      static_cast<double>(arms[0].circuits_built + arms[0].systems_built) /
      static_cast<double>(arms[1].circuits_built + arms[1].systems_built);

  Table t({"arm", "wall (s)", "builds", "SNM mean (mV)", "SNM std (mV)"});
  for (const ArmResult& a : arms) {
    t.begin_row()
        .cell(a.name)
        .cell(a.wall_s, 3)
        .cell(static_cast<int>(a.circuits_built + a.systems_built))
        .cell(a.mean() * 1e3, 3)
        .cell(a.stddev() * 1e3, 3);
  }
  t.print(std::cout);
  std::cout << "\nbatch vs rebuild: bitwise samples "
            << (bitwise ? "MATCH" : "MISMATCH") << ", wall speedup "
            << Table::format(speedup, 2) << "x, setup-work reduction "
            << static_cast<int>(setup_reduction) << "x\n";

  write_json(out, arms, bitwise, speedup, setup_reduction);
  std::cout << "Wrote " << out << "\n";
  return bitwise ? 0 : 1;
}
