// Figure 17 reproduction: ON resistance and OFF current of NEMS vs CMOS
// sleep transistors across normalized device area (area of a W/L = 5
// CMOS device at 90 nm = 1).
//
// Paper: NEMS leaks up to three orders of magnitude less at every size;
// its Ron disadvantage shrinks to "minimal" as the device is sized up, so
// a sized-up NEMS sleep switch gives the leakage win with negligible
// performance cost.  The gated-block study quantifies that cost.
#include <iostream>

#include "nemsim/core/power_gating.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Figure 17: sleep transistor Ron / Ioff vs normalized area\n\n";

  const std::vector<double> areas = {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
  SleepSweepConfig cmos_cfg;
  SleepSweepConfig nems_cfg;
  nems_cfg.device = SleepDeviceType::kNems;
  auto cmos = sweep_sleep_transistor(cmos_cfg, areas);
  auto nems = sweep_sleep_transistor(nems_cfg, areas);

  Table t({"area (norm)", "Ron cmos (Ohm)", "Ron nems (Ohm)", "Ron gap",
           "Ioff cmos (A)", "Ioff nems (A)", "Ioff ratio"});
  for (std::size_t i = 0; i < areas.size(); ++i) {
    t.begin_row()
        .cell(areas[i], 4)
        .cell(cmos[i].ron, 4)
        .cell(nems[i].ron, 4)
        .cell(Table::format(nems[i].ron - cmos[i].ron, 4) + " Ohm")
        .cell_sci(cmos[i].ioff, 3)
        .cell_sci(nems[i].ioff, 3)
        .cell_sci(cmos[i].ioff / nems[i].ioff, 3);
  }
  t.print(std::cout);

  std::cout << "\nGated-block check (4-stage inverter chain behind a "
               "footer switch, width 1 um):\n";
  Table g({"sleep device", "delay gated/ungated", "vgnd droop (mV)",
           "sleep leakage (nW)", "wake-up (ps)"});
  for (SleepDeviceType dev : {SleepDeviceType::kCmos, SleepDeviceType::kNems}) {
    GatedBlockConfig c;
    c.device = dev;
    GatedBlockResult r = measure_gated_block(c);
    g.begin_row()
        .cell(dev == SleepDeviceType::kCmos ? "CMOS" : "NEMS")
        .cell(r.delay_gated / r.delay_ungated, 3)
        .cell(r.vgnd_droop * 1e3, 3)
        .cell(r.sleep_leakage * 1e9, 3)
        .cell(r.wakeup_time * 1e12, 3);
  }
  g.print(std::cout);

  std::cout << "\nPaper: up to three orders of magnitude lower OFF current "
               "with negligible performance degradation when the NEMS "
               "switch is sized up.\n";
  return 0;
}
