// Figure 9 reproduction: worst-case delay vs noise margin of the 8-input
// CMOS dynamic OR gate under process variation (sigma_Vth/mu_Vth of 3, 6
// and 9 %), traded off by sweeping the keeper width.
//
// Paper's message: to keep a target noise margin under higher variation
// the keeper must grow, which costs delay - the curves shift up/left as
// sigma increases.  Worst case here = mean + 3 sigma for delay, mean - 3
// sigma for noise margin over the Monte-Carlo trials.
#include <iostream>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/table.h"
#include "nemsim/variation/montecarlo.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Figure 9: delay vs noise margin of an 8-input CMOS dynamic "
               "OR under Vth variation\n(sweeping keeper width; worst case "
               "= mean +/- 3 sigma over Monte-Carlo trials)\n\n";

  const std::vector<double> keeper_widths = {0.2e-6, 0.4e-6, 0.6e-6, 0.8e-6};
  const std::vector<double> sigma_levels = {0.03, 0.06, 0.09};
  constexpr std::size_t kTrials = 10;

  // Nominal (no-variation) reference delay for normalization.
  double d_ref = 0.0;
  {
    DynamicOrConfig c;
    c.fanin = 8;
    c.fanout = 1;
    c.autosize_keeper = false;
    c.keeper_width = keeper_widths.front();
    DynamicOrGate gate = build_dynamic_or(c);
    d_ref = measure_worst_case_delay(gate);
  }

  // One task per (sigma, keeper width) cell; each task owns its gate and
  // runs its Monte-Carlo trials locally, so cells evaluate in parallel
  // with deterministic (thread-count independent) results.
  struct Cell {
    variation::MonteCarloResult delay, nm;
  };
  const std::size_t n_cells = sigma_levels.size() * keeper_widths.size();
  std::vector<Cell> cells = util::parallel_map(n_cells, [&](std::size_t i) {
    const double sigma = sigma_levels[i / keeper_widths.size()];
    const double wk = keeper_widths[i % keeper_widths.size()];
    DynamicOrConfig c;
    c.fanin = 8;
    c.fanout = 1;
    c.autosize_keeper = false;
    c.keeper_width = wk;
    DynamicOrGate gate = build_dynamic_or(c);

    variation::MonteCarloOptions mc;
    mc.trials = kTrials;
    mc.sigma_fraction = sigma;

    auto delay_metric = [&](spice::Circuit&) {
      return measure_worst_case_delay(gate);
    };
    auto nm_metric = [&](spice::Circuit&) {
      return measure_noise_margin(gate, /*v_resolution=*/0.025);
    };
    Cell cell;
    cell.delay = variation::monte_carlo(gate.ckt(), delay_metric, mc);
    cell.nm = variation::monte_carlo(gate.ckt(), nm_metric, mc);
    return cell;
  });

  Table t({"sigma/mu", "keeper W (um)", "NM worst (V)", "delay worst (norm)",
           "failed trials"});
  for (std::size_t i = 0; i < n_cells; ++i) {
    const double sigma = sigma_levels[i / keeper_widths.size()];
    const double wk = keeper_widths[i % keeper_widths.size()];
    const Cell& cell = cells[i];
    t.begin_row()
        .cell(Table::format(sigma * 100.0, 2) + " %")
        .cell(wk * 1e6, 3)
        .cell(cell.nm.stats.mean() - 3.0 * cell.nm.stats.stddev(), 3)
        .cell(cell.delay.mean_plus_sigmas(3.0) / d_ref, 3)
        .cell(static_cast<int>(cell.delay.failures + cell.nm.failures));
  }
  t.print(std::cout);

  std::cout << "\nReading the table as the paper's Figure 9: at a fixed "
               "noise-margin requirement, higher sigma forces a larger "
               "keeper and therefore a larger worst-case delay.\n";
  return 0;
}
