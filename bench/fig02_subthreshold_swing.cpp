// Figure 2 reproduction: minimum subthreshold swing of classical and
// non-classical devices [7]-[12].  For the two devices this library
// models (bulk CMOS and the NEMS switch) the survey value is
// cross-checked against the swing measured on our own calibrated models.
#include <iostream>

#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/tech/swing_survey.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;

  const double vdd = tech::node_90nm().vdd;
  tech::DeviceIV cmos = tech::characterize_mosfet(
      tech::nmos_90nm(), devices::MosPolarity::kNmos, 1.0_um, 0.1_um, vdd);
  tech::NemsIV nems = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, vdd);

  std::cout << "Figure 2: minimum subthreshold swing survey (60 mV/dec = "
               "thermionic limit: "
            << Table::format(tech::cmos_thermionic_limit_mv_dec(), 3)
            << " mV/dec at 300 K)\n\n";

  Table t({"Device", "survey swing (mV/dec)", "measured here (mV/dec)"});
  for (const auto& e : tech::swing_survey()) {
    std::string measured = "-";
    if (e.device == "Bulk CMOS") {
      measured = Table::format(cmos.swing_mv_dec, 3);
    } else if (e.modeled_here) {
      measured = Table::format(nems.iv.swing_mv_dec, 3);
    }
    t.begin_row().cell(e.device).cell(e.swing_mv_dec, 3).cell(measured);
  }
  t.print(std::cout);

  std::cout << "\nThe NEMS switch crosses decades of current through the "
               "mechanical pull-in snap, far below the 60 mV/dec limit of "
               "any thermionic device.\n";
  return 0;
}
