// Extension: the NEMFET as an electromechanical resonator (the paper's
// ref [22], "Ultra-Low Voltage MEMS Resonator Based on RSG-MOSFET").
//
// AC analysis about a sub-pull-in bias: the beam displacement response
// x(f) shows the spring-mass resonance, and the *electrostatic spring
// softening* shifts it down as the DC bias approaches pull-in - the
// classic MEMS resonator tuning knob, captured here because the beam's
// momentum equation is part of the AC system (DESIGN.md decision #1).
#include <cmath>
#include <iostream>
#include <numbers>

#include "nemsim/devices/nemfet.h"
#include "nemsim/devices/sources.h"
#include "nemsim/spice/ac.h"
#include "nemsim/spice/circuit.h"
#include "nemsim/tech/cards.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;
  using devices::Nemfet;
  using devices::NemsPolarity;
  using devices::SourceWave;
  using devices::VoltageSource;

  const devices::NemsParams p = tech::nems_90nm();
  const double f0 =
      std::sqrt(p.spring_k / p.mass) / (2.0 * std::numbers::pi);

  std::cout << "Extension: NEMFET as an electromechanical resonator "
               "(paper ref [22])\n";
  std::cout << "Bare beam: f0 = " << Table::format(f0 * 1e-9, 3)
            << " GHz, zeta = "
            << Table::format(p.damping /
                                 (2.0 * std::sqrt(p.spring_k * p.mass)),
                             3)
            << "\n\n";

  Table t({"V_bias (V)", "V/Vpi", "f_peak (GHz)", "peak/static gain",
           "x_static (pm/V)"});
  for (double vbias : {0.10, 0.20, 0.30, 0.38}) {
    spice::Circuit ckt;
    spice::NodeId d = ckt.node("d");
    spice::NodeId g = ckt.node("g");
    ckt.add<VoltageSource>("Vd", d, ckt.gnd(), SourceWave::dc(0.05));
    auto& vg = ckt.add<VoltageSource>("Vg", g, ckt.gnd(),
                                      SourceWave::dc(vbias));
    vg.set_ac(1.0);  // response per volt of gate drive
    ckt.add<Nemfet>("X1", d, g, ckt.gnd(), NemsPolarity::kN, p, 1.0_um);
    spice::MnaSystem system(ckt);

    auto freqs = spice::logspace(f0 / 30.0, 10.0 * f0, 121);
    spice::AcResult ac = spice::ac_analysis(system, freqs);
    auto mags = ac.magnitude_series("X1.x");

    const auto peak_it = std::max_element(mags.begin(), mags.end());
    const double f_peak =
        freqs[static_cast<std::size_t>(peak_it - mags.begin())];
    t.begin_row()
        .cell(vbias, 3)
        .cell(vbias / p.analytic_pull_in_voltage(), 3)
        .cell(f_peak * 1e-9, 4)
        .cell(*peak_it / mags.front(), 4)
        .cell(mags.front() * 1e12, 4);
  }
  t.print(std::cout);

  std::cout << "\nSpring softening: the effective stiffness k - dFe/dx "
               "drops as bias approaches pull-in, so the resonance tunes "
               "down and the static sensitivity (pm per volt) grows - "
               "the voltage-tunable resonator of [22].\n";
  return 0;
}
