// Ablation: temperature dependence of leakage (the paper's introduction,
// ref [5]: leakage-temperature coupling drives total power).
//
// CMOS subthreshold leakage grows exponentially with temperature; the
// NEMS OFF state is a vacuum-gap tunneling/Brownian floor that barely
// moves.  This is the second, quieter reason hybrid NEMS-CMOS helps: its
// leakage advantage *widens* exactly where leakage hurts most (hot).
#include <iostream>

#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/tech/corners.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;

  std::cout << "Ablation: OFF current vs temperature (W = 1 um, Vds = 1.2 "
               "V)\n\n";

  Table t({"T (K)", "CMOS Ioff (nA)", "NEMS Ioff (pA)", "CMOS/NEMS ratio"});
  for (double temp : {250.0, 300.0, 350.0, 400.0}) {
    tech::DeviceIV cmos = tech::characterize_mosfet(
        tech::at_temperature(tech::nmos_90nm(), temp),
        devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
    tech::NemsIV nems = tech::characterize_nemfet(
        tech::at_temperature(tech::nems_90nm(), temp), 1.0_um, 1.2);
    t.begin_row()
        .cell(temp, 4)
        .cell(cmos.ioff * 1e9, 4)
        .cell(nems.iv.ioff * 1e12, 4)
        .cell(cmos.ioff / nems.iv.ioff, 4);
  }
  t.print(std::cout);

  std::cout << "\nProcess corners at 300 K (the Figure 9 variation story "
               "in corner form):\n";
  Table c({"corner", "Ion (uA)", "Ioff (nA)"});
  for (tech::Corner corner :
       {tech::Corner::kSlow, tech::Corner::kTypical, tech::Corner::kFast}) {
    tech::DeviceIV iv = tech::characterize_mosfet(
        tech::at_corner(tech::nmos_90nm(), corner),
        devices::MosPolarity::kNmos, 1.0_um, 0.1_um, 1.2);
    c.begin_row()
        .cell(tech::corner_name(corner))
        .cell(iv.ion * 1e6, 4)
        .cell(iv.ioff * 1e9, 4);
  }
  c.print(std::cout);

  std::cout << "\nThe CMOS-to-NEMS leakage ratio grows by more than an "
               "order of magnitude from 250 K to 400 K: hot chips benefit "
               "most from the hybrid approach.\n";
  return 0;
}
