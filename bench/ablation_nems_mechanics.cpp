// Ablation: how the NEMS beam's mechanical design sets the hybrid gate's
// delay (DESIGN.md calibration note).
//
// The hybrid dynamic OR's delay penalty is dominated by the beam's
// pull-in transit, which scales as sqrt(mass/force).  This bench sweeps
// the beam mass (with damping scaled to keep the same damping ratio) and
// reports the hybrid gate delay against the fixed CMOS baseline - showing
// both where our calibration sits and how sensitive the paper's "minor
// delay penalty" claim is to the assumed NEMS technology.
#include <cmath>
#include <iostream>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Ablation: hybrid OR delay vs NEMS beam mass (8-input, "
               "fan-out 3)\n\n";

  DynamicOrConfig base;
  base.fanin = 8;
  base.fanout = 3;
  base.hybrid = false;
  DynamicOrGate cmos = build_dynamic_or(base);
  const double d_cmos = measure_worst_case_delay(cmos);

  const devices::NemsParams nominal = tech::nems_90nm();
  Table t({"mass (kg)", "f0 (GHz)", "hybrid delay (ps)", "vs CMOS",
           "is default?"});
  for (double scale : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    DynamicOrConfig c = base;
    c.hybrid = true;
    c.nems_card.mass = nominal.mass * scale;
    // Keep the damping ratio: c ~ sqrt(k m).
    c.nems_card.damping = nominal.damping * std::sqrt(scale);
    DynamicOrGate hybrid = build_dynamic_or(c);
    const double d = measure_worst_case_delay(hybrid);
    const double f0 = std::sqrt(c.nems_card.spring_k / c.nems_card.mass) /
                      (2.0 * 3.14159265358979) * 1e-9;
    t.begin_row()
        .cell_sci(c.nems_card.mass, 2)
        .cell(f0, 3)
        .cell(d * 1e12, 4)
        .cell(Table::format(d / d_cmos, 3) + "x")
        .cell(scale == 1.0 ? "yes" : "");
  }
  t.print(std::cout);

  std::cout << "\nCMOS baseline: " << Table::format(d_cmos * 1e12, 4)
            << " ps.  The paper's 10-20 % penalty requires the "
               "aggressively scaled (GHz-class) beam of [13]; a 10x "
               "heavier beam forfeits the high-fan-in delay win.\n";
  return 0;
}
