// Table 1 reproduction: Ion and Ioff of the calibrated CMOS and NEMS
// devices, measured by driving the simulator exactly as the paper's
// HSPICE runs did (Vgs sweep at Vds = Vdd, W = 1 um).
//
// Paper targets: CMOS Ion = 1110 uA/um, Ioff = 50 nA/um;
//                NEMS Ion = 330 uA/um, Ioff = 110 pA/um.
#include <iostream>

#include "nemsim/tech/cards.h"
#include "nemsim/tech/characterize.h"
#include "nemsim/util/table.h"
#include "nemsim/util/units.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::literals;
  const double vdd = tech::node_90nm().vdd;

  tech::DeviceIV cmos = tech::characterize_mosfet(
      tech::nmos_90nm(), devices::MosPolarity::kNmos, 1.0_um, 0.1_um, vdd);
  tech::NemsIV nems = tech::characterize_nemfet(tech::nems_90nm(), 1.0_um, vdd);

  std::cout << "Table 1: Ion / Ioff of NEMS and CMOS devices (W = 1 um, "
               "Vdd = "
            << vdd << " V)\n\n";

  Table t({"Device", "Ion (uA/um)", "paper Ion", "Ioff", "paper Ioff",
           "swing (mV/dec)"});
  t.begin_row()
      .cell("CMOS [4]")
      .cell(cmos.ion * 1e6, 4)
      .cell("1110")
      .cell(Table::format(cmos.ioff * 1e9, 3) + " nA/um")
      .cell("50 nA/um")
      .cell(cmos.swing_mv_dec, 3);
  t.begin_row()
      .cell("NEMS [13]")
      .cell(nems.iv.ion * 1e6, 4)
      .cell("330")
      .cell(Table::format(nems.iv.ioff * 1e12, 3) + " pA/um")
      .cell("110 pA/um")
      .cell(nems.iv.swing_mv_dec, 3);
  t.print(std::cout);

  std::cout << "\nNEMS electromechanical window: pull-in "
            << Table::format(nems.pull_in_v, 3) << " V (analytic "
            << Table::format(
                   tech::nems_90nm().analytic_pull_in_voltage(), 3)
            << " V), pull-out " << Table::format(nems.pull_out_v, 3)
            << " V\n";
  std::cout << "Ion/Ioff ratio: CMOS "
            << Table::format_sci(cmos.ion / cmos.ioff, 2) << ", NEMS "
            << Table::format_sci(nems.iv.ion / nems.iv.ioff, 2) << "\n";
  return 0;
}
