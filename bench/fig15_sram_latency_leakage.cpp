// Figure 15 reproduction: read latency and standby leakage of the four
// SRAM cells, normalized to the conventional cell.
//
// Paper: all three low-leakage cells are slower than conventional (hybrid
// +23 %); the hybrid cell has by far the lowest standby leakage (~7.7x
// below conventional).  The asymmetric cell's latency is the average of
// its stored-0 / stored-1 reads (as in the paper).
//
// Standby convention: primary numbers use floating bitlines (precharge
// gated off in standby); the bitlines-held-at-Vdd variant is reported as
// a second column because the access-transistor leakage floor it adds is
// common to every cell and compresses the ratios.
#include <iostream>

#include "bench_diagnostics.h"
#include "nemsim/core/sram.h"
#include "nemsim/util/table.h"

int main(int argc, char** argv) {
  using namespace nemsim;
  using namespace nemsim::core;
  const bench::DiagnosticsFlag diag =
      bench::parse_diagnostics_flag(argc, argv);

  std::cout << "Figure 15: SRAM read latency and standby leakage "
               "(normalized to the conventional cell)\n\n";

  // The four Figure 13 architectures, plus the paper's Section 5.3
  // alternative (NEMS pull-ups only) as a fifth row.
  const SramKind kinds[] = {SramKind::kConventional, SramKind::kDualVt,
                            SramKind::kAsymmetric, SramKind::kHybrid,
                            SramKind::kHybridPullupOnly};

  struct Row {
    double latency;
    double leak_float;
    double leak_pc;
  };
  std::vector<Row> rows;
  for (SramKind kind : kinds) {
    SramConfig c;
    c.kind = kind;
    Row r;
    if (kind == SramKind::kAsymmetric) {
      // Average of the asymmetric cell's two read directions.
      c.stored_one = false;
      const double l0 = measure_read_latency(c);
      c.stored_one = true;
      const double l1 = measure_read_latency(c);
      r.latency = 0.5 * (l0 + l1);
      c.stored_one = false;
    } else {
      r.latency = measure_read_latency(c);
    }
    r.leak_float = measure_standby_leakage(c);
    r.leak_pc = measure_standby_leakage_precharged(c);
    rows.push_back(r);
  }

  const Row& conv = rows.front();
  const Row& hybrid = rows[3];
  Table t({"cell", "latency (ps)", "latency norm", "leak (nW)", "leak norm",
           "leak norm (BL@Vdd)"});
  for (std::size_t k = 0; k < rows.size(); ++k) {
    t.begin_row()
        .cell(sram_kind_name(kinds[k]))
        .cell(rows[k].latency * 1e12, 4)
        .cell(rows[k].latency / conv.latency, 3)
        .cell(rows[k].leak_float * 1e9, 4)
        .cell(rows[k].leak_float / conv.leak_float, 3)
        .cell(rows[k].leak_pc / conv.leak_pc, 3);
  }
  t.print(std::cout);

  std::cout << "\nPaper reference: hybrid latency 1.23x, hybrid leakage "
            << "~1/7.7 of conventional.  Measured leakage improvement: "
            << Table::format(conv.leak_float / hybrid.leak_float, 3)
            << "x (floating bitlines), "
            << Table::format(conv.leak_pc / hybrid.leak_pc, 3)
            << "x (driven bitlines); the paper's 7.7x sits between these "
               "two conventions.\n";
  std::cout << "Section 5.3 alternative (Hybrid-PU): no latency penalty, "
               "but the leaky NMOS pull-downs cap the saving at "
            << Table::format(conv.leak_float / rows.back().leak_float, 3)
            << "x - exactly the paper's argument for replacing both "
               "device pairs.\n";

  if (diag.enabled) {
    // Representative instance: the hybrid cell's read transient, re-run
    // with a RunReport attached.
    SramConfig c;
    c.kind = SramKind::kHybrid;
    spice::RunReport report;
    measure_read_latency(c, 0.1, &report);
    bench::emit_report(diag, report);

    // Accelerated re-run (quiescent bypass + Jacobian reuse) for the
    // before/after table in EXPERIMENTS.md.
    c.newton.bypass = true;
    c.newton.jacobian_reuse = true;
    spice::RunReport accel_report;
    measure_read_latency(c, 0.1, &accel_report);
    bench::emit_report(bench::accel_variant(diag), accel_report);

    // Kernel-lane re-run (NewtonOptions::kernels only) for the same
    // table's stamp-throughput column.
    c.newton.bypass = false;
    c.newton.jacobian_reuse = false;
    c.newton.kernels = true;
    spice::RunReport kernel_report;
    measure_read_latency(c, 0.1, &kernel_report);
    bench::emit_report(bench::kernels_variant(diag), kernel_report);
  }
  return 0;
}
