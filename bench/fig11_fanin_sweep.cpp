// Figure 11 reproduction: normalized switching power and worst-case delay
// vs fan-in (4, 8, 12, 16) at a constant fan-out of 3.
//
// Paper: CMOS is faster at fan-in 4 and 8 (at much higher power); the
// hybrid gate wins BOTH delay and power as fan-in grows beyond ~12,
// because the CMOS keeper must scale with the pull-down leakage while
// the hybrid keeper stays minimal.  Normalization per the paper: both
// axes w.r.t. the hybrid gate at fan-in 4.
#include <iostream>

#include "bench_diagnostics.h"
#include "nemsim/core/dynamic_or.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/table.h"

int main(int argc, char** argv) {
  using namespace nemsim;
  using namespace nemsim::core;
  const bench::DiagnosticsFlag diag =
      bench::parse_diagnostics_flag(argc, argv);

  std::cout << "Figure 11: dynamic OR fan-in sweep (fan-out = 3)\n\n";

  // One task per (fan-in, variant): every task builds its own gate and
  // MnaSystem, so the sweep parallelizes with no shared state and the
  // results are identical for any NEMSIM_THREADS setting.
  const std::vector<int> fanins = {4, 8, 12, 16};
  std::vector<DynamicOrMetrics> metrics = util::parallel_map(
      fanins.size() * 2, [&](std::size_t i) {
        DynamicOrConfig c;
        c.fanin = fanins[i / 2];
        c.fanout = 3;
        c.hybrid = (i % 2 == 1);
        DynamicOrGate gate = build_dynamic_or(c);
        return measure_dynamic_or(gate);
      });

  struct Row {
    int fanin;
    DynamicOrMetrics cmos, hybrid;
  };
  std::vector<Row> rows;
  for (std::size_t f = 0; f < fanins.size(); ++f) {
    rows.push_back(Row{fanins[f], metrics[2 * f], metrics[2 * f + 1]});
  }

  const double p_norm = rows.front().hybrid.switching_power;
  const double d_norm = rows.front().hybrid.worst_case_delay;

  Table t({"fan-in", "P_cmos", "P_hybrid", "D_cmos", "D_hybrid",
           "hybrid wins delay?"});
  for (const Row& r : rows) {
    t.begin_row()
        .cell(r.fanin)
        .cell(r.cmos.switching_power / p_norm, 3)
        .cell(r.hybrid.switching_power / p_norm, 3)
        .cell(r.cmos.worst_case_delay / d_norm, 3)
        .cell(r.hybrid.worst_case_delay / d_norm, 3)
        .cell(r.hybrid.worst_case_delay < r.cmos.worst_case_delay ? "yes"
                                                                  : "no");
  }
  t.print(std::cout);

  // Locate the delay crossover.
  int crossover = -1;
  for (const Row& r : rows) {
    if (r.hybrid.worst_case_delay < r.cmos.worst_case_delay) {
      crossover = r.fanin;
      break;
    }
  }
  if (crossover > 0) {
    std::cout << "\nDelay crossover: hybrid wins from fan-in " << crossover
              << " (paper: beyond ~12).\n";
  } else {
    std::cout << "\nNo delay crossover observed up to fan-in 16.\n";
  }
  std::cout << "Hybrid switching power is lower at every fan-in; the "
               "advantage widens with fan-in (keeper contention).\n";

  if (diag.enabled) {
    // Representative instance: the hardest sweep point (fan-in 16,
    // hybrid), re-run with a RunReport attached.
    DynamicOrConfig c;
    c.fanin = 16;
    c.fanout = 3;
    c.hybrid = true;
    DynamicOrGate gate = build_dynamic_or(c);
    spice::RunReport report;
    measure_dynamic_or(gate, &report);
    bench::emit_report(diag, report);

    // Accelerated re-run (quiescent bypass + Jacobian reuse) for the
    // before/after table in EXPERIMENTS.md.
    c.newton.bypass = true;
    c.newton.jacobian_reuse = true;
    DynamicOrGate accel_gate = build_dynamic_or(c);
    spice::RunReport accel_report;
    measure_dynamic_or(accel_gate, &accel_report);
    bench::emit_report(bench::accel_variant(diag), accel_report);

    // Kernel-lane re-run (NewtonOptions::kernels only) for the same
    // table's stamp-throughput column.
    c.newton.bypass = false;
    c.newton.jacobian_reuse = false;
    c.newton.kernels = true;
    DynamicOrGate kernel_gate = build_dynamic_or(c);
    spice::RunReport kernel_report;
    measure_dynamic_or(kernel_gate, &kernel_report);
    bench::emit_report(bench::kernels_variant(diag), kernel_report);
  }
  return 0;
}
