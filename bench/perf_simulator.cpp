// Simulator kernel performance (google-benchmark): dense LU scaling,
// dense-vs-sparse ablation (DESIGN.md decision #4), operating points and
// transient throughput on the paper's actual circuits.
#include <benchmark/benchmark.h>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/sram.h"
#include "nemsim/linalg/lu.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/util/rng.h"

namespace {

using namespace nemsim;

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  return a;
}

void BM_DenseLuFactorSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a = random_spd(n, 7);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_DenseMatVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a = random_spd(n, 7);
  linalg::Vector x(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.multiply(x));
}
BENCHMARK(BM_DenseMatVec)->Arg(64)->Arg(256);

void BM_SparseMatVec(benchmark::State& state) {
  // MNA-like sparsity: ~5 entries per row.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back({r, r, 4.0});
    for (int k = 0; k < 4; ++k) {
      trips.push_back({r, rng.index(n), rng.uniform(-1.0, 1.0)});
    }
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector x(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.multiply(x));
}
BENCHMARK(BM_SparseMatVec)->Arg(64)->Arg(256);

void BM_SparseLuSolve(benchmark::State& state) {
  // MNA-like pattern (~5/row): the dense-vs-sparse ablation of DESIGN.md
  // decision #4.  At these sizes dense partial-pivot LU wins; sparse LU
  // only pays off on genuinely sparse structures (see the tridiagonal
  // variant below).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back({r, r, 8.0});
    for (int k = 0; k < 4; ++k) {
      trips.push_back({r, rng.index(n), rng.uniform(-1.0, 1.0)});
    }
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector b(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.lu_solve(b));
}
BENCHMARK(BM_SparseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuTridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({i, i, 2.0});
    if (i > 0) trips.push_back({i, i - 1, -1.0});
    if (i + 1 < n) trips.push_back({i, i + 1, -1.0});
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector b(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.lu_solve(b));
}
BENCHMARK(BM_SparseLuTridiagonal)->Arg(128)->Arg(512);

void BM_DynamicOrOperatingPoint(benchmark::State& state) {
  core::DynamicOrConfig c;
  c.fanin = static_cast<int>(state.range(0));
  c.hybrid = state.range(1) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::MnaSystem system(gate.ckt());
  for (auto _ : state) {
    system.reset_devices();
    benchmark::DoNotOptimize(spice::operating_point(system));
  }
  state.SetLabel(c.hybrid ? "hybrid" : "cmos");
}
BENCHMARK(BM_DynamicOrOperatingPoint)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 1});

void BM_SramReadTransient(benchmark::State& state) {
  core::SramConfig c;
  c.kind = state.range(0) != 0 ? core::SramKind::kHybrid
                               : core::SramKind::kConventional;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_read_latency(c));
  }
  state.SetLabel(state.range(0) ? "hybrid" : "conventional");
}
BENCHMARK(BM_SramReadTransient)->Arg(0)->Arg(1);

void BM_DynamicOrSwitchingCycle(benchmark::State& state) {
  core::DynamicOrConfig c;
  c.fanin = 8;
  c.hybrid = state.range(0) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_worst_case_delay(gate));
  }
  state.SetLabel(state.range(0) ? "hybrid" : "cmos");
}
BENCHMARK(BM_DynamicOrSwitchingCycle)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
