// Simulator kernel performance (google-benchmark): dense LU scaling,
// dense-vs-sparse ablation (DESIGN.md decision #4), operating points and
// transient throughput on the paper's actual circuits.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/sram.h"
#include "nemsim/linalg/lu.h"
#include "nemsim/linalg/sparse.h"
#include "nemsim/linalg/sparse_lu.h"
#include "nemsim/spice/op.h"
#include "nemsim/spice/transient.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/rng.h"

namespace {

using namespace nemsim;

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  return a;
}

void BM_DenseLuFactorSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a = random_spd(n, 7);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_DenseMatVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a = random_spd(n, 7);
  linalg::Vector x(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.multiply(x));
}
BENCHMARK(BM_DenseMatVec)->Arg(64)->Arg(256);

void BM_SparseMatVec(benchmark::State& state) {
  // MNA-like sparsity: ~5 entries per row.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back({r, r, 4.0});
    for (int k = 0; k < 4; ++k) {
      trips.push_back({r, rng.index(n), rng.uniform(-1.0, 1.0)});
    }
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector x(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.multiply(x));
}
BENCHMARK(BM_SparseMatVec)->Arg(64)->Arg(256);

void BM_SparseLuSolve(benchmark::State& state) {
  // MNA-like pattern (~5/row): the dense-vs-sparse ablation of DESIGN.md
  // decision #4.  At these sizes dense partial-pivot LU wins; sparse LU
  // only pays off on genuinely sparse structures (see the tridiagonal
  // variant below).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back({r, r, 8.0});
    for (int k = 0; k < 4; ++k) {
      trips.push_back({r, rng.index(n), rng.uniform(-1.0, 1.0)});
    }
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector b(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.lu_solve(b));
}
BENCHMARK(BM_SparseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuTridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({i, i, 2.0});
    if (i > 0) trips.push_back({i, i - 1, -1.0});
    if (i + 1 < n) trips.push_back({i, i + 1, -1.0});
  }
  linalg::SparseMatrix a(n, n, std::move(trips));
  linalg::Vector b(n, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(a.lu_solve(b));
}
BENCHMARK(BM_SparseLuTridiagonal)->Arg(128)->Arg(512);

linalg::CsrMatrix mna_like_csr(std::size_t n) {
  // Same matrix as BM_SparseLuSolve (~5 entries/row, dominant diagonal).
  Rng rng(11);
  std::vector<std::pair<std::size_t, std::size_t>> entries;
  for (std::size_t r = 0; r < n; ++r) {
    entries.emplace_back(r, r);
    for (int k = 0; k < 4; ++k) entries.emplace_back(r, rng.index(n));
  }
  linalg::CsrMatrix a(n, std::move(entries));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t s = a.row_start()[r]; s < a.row_start()[r + 1]; ++s) {
      a.values()[s] = a.col_index()[s] == r ? 8.0 : rng.uniform(-1.0, 1.0);
    }
  }
  return a;
}

void BM_SparseLuFactor(benchmark::State& state) {
  // Full factorization (symbolic + numeric) every iteration: the cost the
  // cached-symbolic refactor path avoids.
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::CsrMatrix a = mna_like_csr(n);
  linalg::Vector b(n, 1.0);
  linalg::SparseLuFactorization lu;
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuFactor)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuRefactor(benchmark::State& state) {
  // Numeric-only refactorization on the cached symbolic analysis — the
  // steady state of the Newton fast path (same values pattern as
  // BM_SparseLuSolve / BM_SparseLuFactor for comparison).
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::CsrMatrix a = mna_like_csr(n);
  linalg::Vector b(n, 1.0);
  linalg::SparseLuFactorization lu;
  lu.factor(a);
  for (auto _ : state) {
    if (!lu.refactor(a)) state.SkipWithError("pivot decay");
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(16)->Arg(64)->Arg(128);

void BM_MnaAssemblyDense(benchmark::State& state) {
  // Dense Jacobian assembly on the paper's largest gate (fan-in 16).
  core::DynamicOrConfig c;
  c.fanin = 16;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::MnaSystem system(gate.ckt());
  const linalg::Vector x = system.initial_guess();
  linalg::Matrix j;
  linalg::Vector f, scale;
  for (auto _ : state) {
    system.assemble(x, j, f, scale, spice::AnalysisMode::kDcOperatingPoint,
                    0.0, 0.0, 1e-9, 1.0);
    benchmark::DoNotOptimize(j);
  }
  state.SetLabel("n=" + std::to_string(system.num_unknowns()));
}
BENCHMARK(BM_MnaAssemblyDense);

void BM_MnaAssemblySparse(benchmark::State& state) {
  // Pattern-frozen CSR assembly of the same system; arg 1 re-runs it
  // through the type-bucketed kernel lanes (NewtonOptions::kernels) so
  // the virtual-dispatch vs scatter-map stamp throughput is tracked
  // side by side.
  core::DynamicOrConfig c;
  c.fanin = 16;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::MnaSystem system(gate.ckt());
  const bool kernels = state.range(0) != 0;
  system.configure_kernels(kernels);
  const linalg::Vector x = system.initial_guess();
  linalg::CsrMatrix j = system.make_sparse_jacobian();
  linalg::Vector f, scale;
  for (auto _ : state) {
    if (!system.assemble_sparse(x, j, f, scale,
                                spice::AnalysisMode::kDcOperatingPoint, 0.0,
                                0.0, 1e-9, 1.0)) {
      j = system.make_sparse_jacobian();
    }
    benchmark::DoNotOptimize(j);
  }
  state.SetLabel(std::string(kernels ? "kernels" : "virtual") +
                 " n=" + std::to_string(system.num_unknowns()) +
                 " nnz=" + std::to_string(j.nonzeros()));
}
BENCHMARK(BM_MnaAssemblySparse)->Arg(0)->Arg(1);

void BM_DynamicOrOperatingPoint(benchmark::State& state) {
  core::DynamicOrConfig c;
  c.fanin = static_cast<int>(state.range(0));
  c.hybrid = state.range(1) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::MnaSystem system(gate.ckt());
  for (auto _ : state) {
    system.reset_devices();
    benchmark::DoNotOptimize(spice::operating_point(system));
  }
  state.SetLabel(c.hybrid ? "hybrid" : "cmos");
}
BENCHMARK(BM_DynamicOrOperatingPoint)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 1});

void BM_SramReadTransient(benchmark::State& state) {
  core::SramConfig c;
  c.kind = state.range(0) != 0 ? core::SramKind::kHybrid
                               : core::SramKind::kConventional;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_read_latency(c));
  }
  state.SetLabel(state.range(0) ? "hybrid" : "conventional");
}
BENCHMARK(BM_SramReadTransient)->Arg(0)->Arg(1);

void BM_DynamicOrSwitchingCycle(benchmark::State& state) {
  core::DynamicOrConfig c;
  c.fanin = 8;
  c.hybrid = state.range(0) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_worst_case_delay(gate));
  }
  state.SetLabel(state.range(0) ? "hybrid" : "cmos");
}
BENCHMARK(BM_DynamicOrSwitchingCycle)->Arg(0)->Arg(1);

void BM_TransientSolverPath(benchmark::State& state) {
  // End-to-end transient on a dynamic OR gate (system size grows with
  // fan-in) with the linear solver forced dense vs sparse; the label
  // carries the Newton work counters of the last run (assembles a /
  // residual-only r / factorizations f / numeric refactor reuses u).
  // The dense/sparse crossover read off this sweep sets
  // NewtonOptions::sparse_threshold.
  core::DynamicOrConfig c;
  c.fanin = static_cast<int>(state.range(1));
  c.fanout = 3;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  const bool sparse = state.range(0) != 0;

  spice::NewtonStats ns;
  for (auto _ : state) {
    spice::MnaSystem system(gate.ckt());
    spice::TransientOptions options;
    options.tstop = 1.5e-9;
    options.newton.solver =
        sparse ? spice::JacobianSolver::kSparse : spice::JacobianSolver::kDense;
    ns = spice::NewtonStats{};
    options.newton_stats = &ns;
    benchmark::DoNotOptimize(spice::transient(system, options));
  }
  std::ostringstream label;
  spice::MnaSystem sized(gate.ckt());
  label << (sparse ? "sparse" : "dense") << " fanin=" << c.fanin
        << " n=" << sized.num_unknowns() << " a=" << ns.assembles
        << " r=" << ns.residual_assembles
        << " f=" << ns.factorizations << " u=" << ns.factorization_reuses;
  state.SetLabel(label.str());
}
BENCHMARK(BM_TransientSolverPath)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16});

void BM_TransientAccel(benchmark::State& state) {
  // Quiescent-device bypass + modified-Newton Jacobian reuse, off vs on,
  // on the fan-in 8 hybrid dynamic OR transient.  The label carries the
  // nonlinear-eval / bypass / stale-solve counters of the last run so the
  // eval reduction is visible directly in BENCH_solver.json.
  core::DynamicOrConfig c;
  c.fanin = 8;
  c.fanout = 3;
  c.hybrid = true;
  const bool accel = state.range(0) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::NewtonStats ns;
  for (auto _ : state) {
    spice::MnaSystem system(gate.ckt());
    spice::TransientOptions options;
    options.tstop = 1.5e-9;
    options.newton.bypass = accel;
    options.newton.jacobian_reuse = accel;
    ns = spice::NewtonStats{};
    options.newton_stats = &ns;
    benchmark::DoNotOptimize(spice::transient(system, options));
  }
  std::ostringstream label;
  label << (accel ? "accel" : "baseline") << " nl=" << ns.nonlinear_evals
        << " byp=" << ns.bypassed_evals << " hit=" << ns.bypass_hit_rate()
        << " stale=" << ns.stale_jacobian_solves;
  state.SetLabel(label.str());
}
BENCHMARK(BM_TransientAccel)->Arg(0)->Arg(1);

void BM_TransientKernels(benchmark::State& state) {
  // Type-bucketed kernel lanes off vs on, end to end, on the fan-in 16
  // hybrid dynamic OR transient (the largest per-figure system).  The
  // label carries the per-bucket lane eval totals of the last run.
  core::DynamicOrConfig c;
  c.fanin = 16;
  c.fanout = 3;
  c.hybrid = true;
  const bool kernels = state.range(0) != 0;
  core::DynamicOrGate gate = core::build_dynamic_or(c);
  spice::NewtonStats ns;
  for (auto _ : state) {
    spice::MnaSystem system(gate.ckt());
    spice::TransientOptions options;
    options.tstop = 1.5e-9;
    options.newton.kernels = kernels;
    ns = spice::NewtonStats{};
    options.newton_stats = &ns;
    benchmark::DoNotOptimize(spice::transient(system, options));
  }
  std::ostringstream label;
  label << (kernels ? "kernels" : "virtual");
  for (const auto& [bucket, evals] : ns.kernel_lane_evals) {
    label << " " << bucket << "=" << evals;
  }
  state.SetLabel(label.str());
}
BENCHMARK(BM_TransientKernels)->Arg(0)->Arg(1);

void BM_SramReadAccel(benchmark::State& state) {
  // Same off/on pair on the hybrid SRAM read transient (the NEMS beams
  // and idle half of the cell are quiescent for most of the run).
  core::SramConfig c;
  c.kind = core::SramKind::kHybrid;
  const bool accel = state.range(0) != 0;
  c.newton.bypass = accel;
  c.newton.jacobian_reuse = accel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::measure_read_latency(c));
  }
  state.SetLabel(accel ? "accel" : "baseline");
}
BENCHMARK(BM_SramReadAccel)->Arg(0)->Arg(1);

void BM_FaninSweepParallel(benchmark::State& state) {
  // The Figure 11 style sweep (fan-in 4/8/12/16, CMOS + hybrid = 8
  // independent transients) on a varying worker count; near-linear
  // scaling to >= 4 threads is the acceptance target.
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::vector<int> fanins = {4, 8, 12, 16};
  for (auto _ : state) {
    std::vector<double> endpoints = util::parallel_map(
        fanins.size() * 2,
        [&](std::size_t i) {
          core::DynamicOrConfig c;
          c.fanin = fanins[i / 2];
          c.fanout = 3;
          c.hybrid = (i % 2 == 1);
          core::DynamicOrGate gate = core::build_dynamic_or(c);
          spice::MnaSystem system(gate.ckt());
          spice::TransientOptions options;
          options.tstop = 1.5e-9;
          spice::Waveform w = spice::transient(system, options);
          return w.at("v(out)", options.tstop);
        },
        threads);
    benchmark::DoNotOptimize(endpoints);
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_FaninSweepParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

#ifndef NEMSIM_BUILD_TYPE
#define NEMSIM_BUILD_TYPE ""
#endif
#ifndef NEMSIM_GIT_SHA
#define NEMSIM_GIT_SHA "unknown"
#endif
#ifndef NEMSIM_BENCHMARK_PROVIDER
#define NEMSIM_BENCHMARK_PROVIDER "unknown"
#endif

// Custom main instead of BENCHMARK_MAIN(): timings from a non-Release
// nemsim build are meaningless for the tracked BENCH_*.json trajectory,
// so warn loudly — and refuse outright when NEMSIM_BENCH_REQUIRE_RELEASE=1
// (run_benchmarks.sh sets it).  The build type also lands in the JSON
// context so stale results are identifiable after the fact.
int main(int argc, char** argv) {
  const std::string build_type = NEMSIM_BUILD_TYPE;
  if (build_type != "Release") {
    std::cerr
        << "================================================================\n"
        << "WARNING: perf_simulator was built as '"
        << (build_type.empty() ? "unset" : build_type) << "', not Release.\n"
        << "Do not record these timings.  Rebuild with the bench preset:\n"
        << "  cmake --preset bench && cmake --build --preset bench -j\n"
        << "================================================================\n";
    const char* require = std::getenv("NEMSIM_BENCH_REQUIRE_RELEASE");
    if (require != nullptr && std::string(require) == "1") {
      std::cerr << "NEMSIM_BENCH_REQUIRE_RELEASE=1: refusing to run.\n";
      return 1;
    }
  }
  benchmark::AddCustomContext("nemsim_build_type",
                              build_type.empty() ? "unset" : build_type);
  // Commit attribution + library provenance: "system" means the distro
  // libbenchmark, whose own "library_build_type" context reads "debug"
  // regardless of how nemsim was compiled (see the top-level CMakeLists
  // for the vendored-Release alternative).
  benchmark::AddCustomContext("nemsim_git_sha", NEMSIM_GIT_SHA);
  benchmark::AddCustomContext("nemsim_benchmark_library",
                              NEMSIM_BENCHMARK_PROVIDER);
  // Accelerator defaults of this build: every benchmark that does not
  // say otherwise in its label ran with exactly these NewtonOptions
  // knobs.  The accel/kernels benches toggle them per-arg.
  const nemsim::spice::NewtonOptions defaults;
  const auto onoff = [](bool v) { return v ? "on" : "off"; };
  benchmark::AddCustomContext(
      "nemsim_newton_accel_defaults",
      std::string("bypass=") + onoff(defaults.bypass) +
          " jacobian_reuse=" + onoff(defaults.jacobian_reuse) +
          " kernels=" + onoff(defaults.kernels));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
