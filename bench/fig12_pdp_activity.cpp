// Figure 12 reproduction: power-delay product (Equation 1) of the
// 8-input dynamic OR gates vs activity factor alpha, for output loads
// C_L = 1 and C_L = 3 (fan-outs 1 and 3).
//
//   P.D. = ((1 - alpha) P_L + alpha P_S) * D          (Equation 1)
//
// Paper: the hybrid gate's PDP is below the CMOS gate's across the whole
// alpha range for both loads (leakage dominates at small alpha, keeper
// contention at large alpha - the hybrid wins on both ends).
#include <iostream>

#include "nemsim/core/dynamic_or.h"
#include "nemsim/core/metrics.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Figure 12: power-delay product vs activity factor\n\n";

  for (int cl : {1, 3}) {
    DynamicOrConfig c;
    c.fanin = 8;
    c.fanout = cl;

    c.hybrid = false;
    DynamicOrGate cmos = build_dynamic_or(c);
    DynamicOrMetrics mc = measure_dynamic_or(cmos);
    c.hybrid = true;
    DynamicOrGate hybrid = build_dynamic_or(c);
    DynamicOrMetrics mh = measure_dynamic_or(hybrid);

    std::cout << "C_L = " << cl << " (P_L cmos "
              << Table::format(mc.leakage_power * 1e9, 3) << " nW, hybrid "
              << Table::format(mh.leakage_power * 1e9, 3) << " nW)\n";
    Table t({"alpha", "PDP cmos (fJ)", "PDP hybrid (fJ)", "hybrid/cmos"});
    for (double alpha = 0.0; alpha <= 1.0001; alpha += 0.1) {
      const double pd_c = power_delay_product(
          alpha, mc.leakage_power, mc.switching_power, mc.worst_case_delay);
      const double pd_h = power_delay_product(
          alpha, mh.leakage_power, mh.switching_power, mh.worst_case_delay);
      t.begin_row()
          .cell(alpha, 2)
          .cell(pd_c * 1e15, 4)
          .cell(pd_h * 1e15, 4)
          .cell(pd_h / pd_c, 3);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper: the proposed hybrid architecture strongly surpasses "
               "the CMOS gate in PDP for both loads across alpha.\n";
  return 0;
}
