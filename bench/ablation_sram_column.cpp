// Ablation: SRAM column depth vs read latency (paper Section 5.1).
//
// "The higher leakage current of OFF access transistors (in other cells
// that are connected to the BLB) makes it tougher for the access
// transistors to create the necessary voltage difference for sense
// amplifiers."  The idle cells droop the reference bitline, so the
// differential the sense amp needs takes longer to develop as the column
// grows - and the effect is worst for the slowest (hybrid) cell.
#include <iostream>
#include <string>

#include "nemsim/core/sram.h"
#include "nemsim/spice/diagnostics.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Ablation: read latency vs column depth (idle cells "
               "sharing the bitlines)\n\n";

  const SramKind kinds[] = {SramKind::kConventional, SramKind::kDualVt,
                            SramKind::kHybrid};
  const std::size_t depths[] = {0, 64, 256, 1024};

  Table t({"cell", "alone (ps)", "64 cells", "256 cells", "1024 cells",
           "1024/alone"});
  for (SramKind kind : kinds) {
    SramConfig c;
    c.kind = kind;
    double lat[4];
    for (int i = 0; i < 4; ++i) {
      lat[i] = measure_column_read_latency(c, depths[i]);
    }
    t.begin_row()
        .cell(sram_kind_name(kind))
        .cell(lat[0] * 1e12, 4)
        .cell(lat[1] * 1e12, 4)
        .cell(lat[2] * 1e12, 4)
        .cell(lat[3] * 1e12, 4)
        .cell(Table::format(lat[3] / lat[0], 3) + "x");
  }
  t.print(std::cout);

  std::cout << "\nDeep columns amplify every cell's latency; the hybrid "
               "cell's weaker read current makes it the most sensitive, "
               "which bounds practical column depth for hybrid arrays.\n";

  // Structural cross-check: elaborate the real 64-cell column (every idle
  // cell its own "Xcell<i>" bitcell instance, nemsim/core/sram.h) and
  // compare against the lumped-leaker model above.  This is also the
  // hierarchy-at-scale exercise: hundreds of devices, and the MNA system
  // is far past the sparse fast-path threshold.
  std::cout << "\nStructural 64-cell column (elaborated instances) vs the "
               "lumped idle-cell model:\n\n";
  Table s({"cell", "devices", "nodes", "sparse", "lumped (ps)",
           "structural (ps)", "ratio"});
  for (SramKind kind : {SramKind::kConventional, SramKind::kHybrid}) {
    SramConfig c;
    c.kind = kind;
    SramColumnConfig col_cfg;
    col_cfg.cell = c;
    col_cfg.n_cells = 64;
    SramColumn col = build_sram_column(col_cfg);
    const std::size_t devices = col.ckt().num_devices();
    const std::size_t nodes = col.ckt().num_nodes();
    spice::RunReport report;
    const double structural =
        measure_column_read_latency_structural(col_cfg, 0.1, &report);
    const double lumped = measure_column_read_latency(c, 63);
    s.begin_row()
        .cell(sram_kind_name(kind))
        .cell(std::to_string(devices))
        .cell(std::to_string(nodes))
        .cell(report.newton.used_sparse ? "yes" : "no")
        .cell(lumped * 1e12, 4)
        .cell(structural * 1e12, 4)
        .cell(Table::format(structural / lumped, 3) + "x");
  }
  s.print(std::cout);

  std::cout << "\nThe lumped model folds all idle access leakage into one "
               "wide device; the structural column keeps each cell's "
               "storage feedback, so the two agree to within the model's "
               "fidelity and the structural run is the ground truth.\n";

  // Solver-accelerator before/after on the structural read: the 63 idle
  // cells sit at their hold state for the whole transient, so with the
  // quiescent-device bypass most of their evaluations replay from cache,
  // and Jacobian reuse skips refactorizations while Newton contracts.
  std::cout << "\nQuiescent bypass + Jacobian reuse on the structural "
               "64-cell read (baseline vs accelerated):\n\n";
  Table a({"cell", "nl evals", "nl evals (accel)", "bypass hit", "stale solves",
           "latency ratio"});
  for (SramKind kind : {SramKind::kConventional, SramKind::kHybrid}) {
    SramColumnConfig col_cfg;
    col_cfg.cell.kind = kind;
    col_cfg.n_cells = 64;
    spice::RunReport base;
    const double lat_base =
        measure_column_read_latency_structural(col_cfg, 0.1, &base);
    col_cfg.cell.newton.bypass = true;
    col_cfg.cell.newton.jacobian_reuse = true;
    spice::RunReport accel;
    const double lat_accel =
        measure_column_read_latency_structural(col_cfg, 0.1, &accel);
    a.begin_row()
        .cell(sram_kind_name(kind))
        .cell(std::to_string(base.newton.nonlinear_evals))
        .cell(std::to_string(accel.newton.nonlinear_evals))
        .cell(Table::format(accel.newton.bypass_hit_rate() * 100.0, 3) + " %")
        .cell(std::to_string(accel.newton.stale_jacobian_solves))
        .cell(Table::format(lat_accel / lat_base, 3) + "x");
  }
  a.print(std::cout);

  std::cout << "\nBoth accelerators are opt-in (NewtonOptions::bypass / "
               "jacobian_reuse); the accelerated solution matches the "
               "baseline within the Newton tolerances.\n";
  return 0;
}
