// Ablation: SRAM column depth vs read latency (paper Section 5.1).
//
// "The higher leakage current of OFF access transistors (in other cells
// that are connected to the BLB) makes it tougher for the access
// transistors to create the necessary voltage difference for sense
// amplifiers."  The idle cells droop the reference bitline, so the
// differential the sense amp needs takes longer to develop as the column
// grows - and the effect is worst for the slowest (hybrid) cell.
#include <iostream>

#include "nemsim/core/sram.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Ablation: read latency vs column depth (idle cells "
               "sharing the bitlines)\n\n";

  const SramKind kinds[] = {SramKind::kConventional, SramKind::kDualVt,
                            SramKind::kHybrid};
  const std::size_t depths[] = {0, 64, 256, 1024};

  Table t({"cell", "alone (ps)", "64 cells", "256 cells", "1024 cells",
           "1024/alone"});
  for (SramKind kind : kinds) {
    SramConfig c;
    c.kind = kind;
    double lat[4];
    for (int i = 0; i < 4; ++i) {
      lat[i] = measure_column_read_latency(c, depths[i]);
    }
    t.begin_row()
        .cell(sram_kind_name(kind))
        .cell(lat[0] * 1e12, 4)
        .cell(lat[1] * 1e12, 4)
        .cell(lat[2] * 1e12, 4)
        .cell(lat[3] * 1e12, 4)
        .cell(Table::format(lat[3] / lat[0], 3) + "x");
  }
  t.print(std::cout);

  std::cout << "\nDeep columns amplify every cell's latency; the hybrid "
               "cell's weaker read current makes it the most sensitive, "
               "which bounds practical column depth for hybrid arrays.\n";
  return 0;
}
