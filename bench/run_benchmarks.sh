#!/usr/bin/env bash
# Runs the simulator kernel benchmarks and records the results at the
# repo root (BENCH_solver.json) so the perf trajectory is tracked in git
# from PR 1 onward.  Also collects RunReport diagnostics JSON from the
# figure benches that support --diagnostics (solver health: Newton
# iteration totals, LTE rejects, stepping stages) as
# BENCH_<fig>_diagnostics.json.
#
# Usage: bench/run_benchmarks.sh [build-dir] [extra google-benchmark args...]
#   e.g. bench/run_benchmarks.sh build --benchmark_filter=SparseLu
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
# Default to the Release "bench" preset (build-bench).  Benchmarks from a
# debug or RelWithDebInfo tree measure the wrong thing; perf_simulator
# itself refuses to run non-Release builds when
# NEMSIM_BENCH_REQUIRE_RELEASE=1 (exported below).
build_dir="${1:-$repo_root/build-bench}"
if [[ $# -gt 0 ]]; then shift; fi

bench_bin="$build_dir/bench/perf_simulator"
if [[ ! -x "$bench_bin" && "$build_dir" == "$repo_root/build-bench" ]]; then
  echo "Configuring + building the Release bench preset..." >&2
  cmake --preset bench -S "$repo_root" >&2
  cmake --build --preset bench -j "$(nproc)" >&2
fi
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build first: cmake --preset bench && cmake --build --preset bench -j" >&2
  exit 1
fi

export NEMSIM_BENCH_REQUIRE_RELEASE="${NEMSIM_BENCH_REQUIRE_RELEASE:-1}"

# Correctness gate: refuse to publish performance numbers from an engine
# that disagrees with itself.  The tier-1 fuzz corpus (bitwise contracts
# on pinned seeds) must pass in the same tree that produced the bench
# binary; skip only when the fuzzer was not built (partial builds still
# get kernel numbers, loudly).  Override with NEMSIM_BENCH_SKIP_CHECK=1
# for local experiments that must never be committed.
fuzz_bin="$build_dir/tools/nemsim-fuzz"
if [[ "${NEMSIM_BENCH_SKIP_CHECK:-0}" != "1" ]]; then
  if [[ -x "$fuzz_bin" ]]; then
    echo "Running tier-1 differential-check corpus before publishing..." >&2
    if ! "$fuzz_bin" --seed 1 --count 6 --bitwise-only \
        --out "$build_dir/fuzz_bench_gate" >&2; then
      echo "error: tier-1 differential-check corpus FAILED." >&2
      echo "The engine violates its own redundancy contracts; fix that" >&2
      echo "before recording benchmark numbers (decks under" >&2
      echo "$build_dir/fuzz_bench_gate)." >&2
      exit 1
    fi
    # The kernel-lane contract guards the numbers this script exists to
    # record: if the fast stamp path disagrees with the virtual path,
    # its benchmarks are measuring a different circuit.
    echo "Running kernel-lane contract sweep..." >&2
    if ! "$fuzz_bin" --seed 1 --count 150 --only kernels \
        --out "$build_dir/fuzz_bench_gate_kernels" >&2; then
      echo "error: kernel-lane contract sweep FAILED (decks under" >&2
      echo "$build_dir/fuzz_bench_gate_kernels)." >&2
      exit 1
    fi
  else
    echo "warning: $fuzz_bin not built; publishing WITHOUT the" >&2
    echo "differential-check gate." >&2
  fi
fi

"$bench_bin" \
  --benchmark_out="$repo_root/BENCH_solver.json" \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $repo_root/BENCH_solver.json"

# Per-figure solver diagnostics (each bench re-runs one representative
# instance with a RunReport attached).  Missing binaries are skipped so a
# partial build still produces the kernel numbers above.
for fig in fig10_fanout_sweep fig11_fanin_sweep fig15_sram_latency_leakage; do
  fig_bin="$build_dir/bench/$fig"
  short="${fig%%_*}"  # fig10_fanout_sweep -> fig10
  if [[ -x "$fig_bin" ]]; then
    out="$repo_root/BENCH_${short}_diagnostics.json"
    "$fig_bin" --diagnostics="$out" > /dev/null
    echo "Wrote $out"
  else
    echo "skip: $fig_bin not built" >&2
  fi
done

# Batched Monte-Carlo benchmark: compile-once parameter-bank overlays vs
# rebuild-per-trial on the Figure 14 hybrid butterfly (64 trials).  The
# binary exits nonzero if the batched samples are not bitwise identical
# to the rebuild arm, so a contract break also fails the bench run.
mc_bin="$build_dir/bench/mc_batch_butterfly"
if [[ -x "$mc_bin" ]]; then
  "$mc_bin" "$repo_root/BENCH_mc_batch.json"
else
  echo "skip: $mc_bin not built" >&2
fi
