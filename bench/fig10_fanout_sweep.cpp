// Figure 10 reproduction: normalized switching power and worst-case delay
// of the 8-input hybrid NEMS-CMOS and CMOS dynamic OR gates vs fan-out.
//
// Paper: hybrid shows ~10 % (FO1) to ~20 % (FO5) higher delay but 60-80 %
// lower switching power.  Normalization follows the paper: power w.r.t.
// the hybrid gate at FO1, delay w.r.t. the CMOS gate at FO1.
#include <iostream>

#include "bench_diagnostics.h"
#include "nemsim/core/dynamic_or.h"
#include "nemsim/util/parallel.h"
#include "nemsim/util/table.h"

int main(int argc, char** argv) {
  using namespace nemsim;
  using namespace nemsim::core;
  const bench::DiagnosticsFlag diag =
      bench::parse_diagnostics_flag(argc, argv);

  std::cout << "Figure 10: 8-input dynamic OR, fan-out sweep\n\n";

  // One task per (fan-out, variant); tasks share nothing, results are
  // collected in input order (thread-count independent).
  constexpr int kMaxFanout = 5;
  std::vector<DynamicOrMetrics> metrics = util::parallel_map(
      static_cast<std::size_t>(kMaxFanout) * 2, [&](std::size_t i) {
        DynamicOrConfig c;
        c.fanin = 8;
        c.fanout = static_cast<int>(i / 2) + 1;
        c.hybrid = (i % 2 == 1);
        DynamicOrGate gate = build_dynamic_or(c);
        return measure_dynamic_or(gate);
      });

  struct Row {
    int fanout;
    DynamicOrMetrics cmos, hybrid;
  };
  std::vector<Row> rows;
  for (int fo = 1; fo <= kMaxFanout; ++fo) {
    rows.push_back(Row{fo, metrics[2 * (fo - 1)], metrics[2 * (fo - 1) + 1]});
  }

  const double p_norm = rows.front().hybrid.switching_power;
  const double d_norm = rows.front().cmos.worst_case_delay;

  Table t({"fan-out", "P_cmos (norm)", "P_hybrid (norm)", "P saving",
           "D_cmos (norm)", "D_hybrid (norm)", "D penalty"});
  for (const Row& r : rows) {
    const double saving =
        1.0 - r.hybrid.switching_power / r.cmos.switching_power;
    const double penalty =
        r.hybrid.worst_case_delay / r.cmos.worst_case_delay - 1.0;
    t.begin_row()
        .cell(r.fanout)
        .cell(r.cmos.switching_power / p_norm, 3)
        .cell(r.hybrid.switching_power / p_norm, 3)
        .cell(Table::format(saving * 100.0, 3) + " %")
        .cell(r.cmos.worst_case_delay / d_norm, 3)
        .cell(r.hybrid.worst_case_delay / d_norm, 3)
        .cell(Table::format(penalty * 100.0, 3) + " %");
  }
  t.print(std::cout);

  std::cout << "\nAbsolute values at FO1: CMOS "
            << Table::format(rows[0].cmos.worst_case_delay * 1e12, 3)
            << " ps / "
            << Table::format(rows[0].cmos.switching_power * 1e6, 3)
            << " uW; hybrid "
            << Table::format(rows[0].hybrid.worst_case_delay * 1e12, 3)
            << " ps / "
            << Table::format(rows[0].hybrid.switching_power * 1e6, 3)
            << " uW\n";
  std::cout << "Paper: hybrid delay +10 % (FO1) to +20 % (FO5); switching "
               "power 60-80 % lower.\n";

  if (diag.enabled) {
    // Representative instance: the heaviest load (FO5, hybrid), re-run
    // with a RunReport attached.
    DynamicOrConfig c;
    c.fanin = 8;
    c.fanout = kMaxFanout;
    c.hybrid = true;
    DynamicOrGate gate = build_dynamic_or(c);
    spice::RunReport report;
    measure_dynamic_or(gate, &report);
    bench::emit_report(diag, report);

    // Same instance with the quiescent-device bypass and Jacobian-reuse
    // accelerators on: the before/after pair for EXPERIMENTS.md.
    c.newton.bypass = true;
    c.newton.jacobian_reuse = true;
    DynamicOrGate accel_gate = build_dynamic_or(c);
    spice::RunReport accel_report;
    measure_dynamic_or(accel_gate, &accel_report);
    bench::emit_report(bench::accel_variant(diag), accel_report);

    // And with the type-bucketed kernel lanes alone, so the EXPERIMENTS
    // stamp-throughput table isolates the lane win from the bypass win.
    c.newton.bypass = false;
    c.newton.jacobian_reuse = false;
    c.newton.kernels = true;
    DynamicOrGate kernel_gate = build_dynamic_or(c);
    spice::RunReport kernel_report;
    measure_dynamic_or(kernel_gate, &kernel_report);
    bench::emit_report(bench::kernels_variant(diag), kernel_report);
  }
  return 0;
}
