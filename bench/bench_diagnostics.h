// Shared --diagnostics[=path] flag for the figure benches.
//
// With the bare flag the bench re-runs one representative instance with a
// RunReport attached and prints its one-line summary; with =path it also
// writes the full JSON report there (run_benchmarks.sh collects these as
// BENCH_<fig>_diagnostics.json).
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "nemsim/spice/diagnostics.h"

namespace nemsim::bench {

struct DiagnosticsFlag {
  bool enabled = false;
  std::string path;  ///< empty: summary to stdout only
};

inline DiagnosticsFlag parse_diagnostics_flag(int argc, char** argv) {
  DiagnosticsFlag flag;
  const std::string prefix = "--diagnostics=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diagnostics") {
      flag.enabled = true;
    } else if (arg.rfind(prefix, 0) == 0) {
      flag.enabled = true;
      flag.path = arg.substr(prefix.size());
    }
  }
  return flag;
}

/// Variant of the flag that writes next to the baseline JSON with an
/// "_accel" suffix ("..._diagnostics.json" -> "..._diagnostics_accel.json").
/// Used by benches that re-run their representative instance with the
/// quiescent-bypass + Jacobian-reuse accelerators enabled.
inline DiagnosticsFlag accel_variant(const DiagnosticsFlag& flag) {
  DiagnosticsFlag accel = flag;
  if (!accel.path.empty()) {
    const std::size_t dot = accel.path.rfind('.');
    if (dot == std::string::npos) {
      accel.path += "_accel";
    } else {
      accel.path.insert(dot, "_accel");
    }
  }
  return accel;
}

inline void emit_report(const DiagnosticsFlag& flag,
                        const spice::RunReport& report) {
  if (!flag.enabled) return;
  std::cout << "\n" << report.summary();
  if (!flag.path.empty()) {
    std::ofstream os(flag.path);
    report.write_json(os);
    if (os) {
      std::cout << "diagnostics JSON written to " << flag.path << "\n";
    } else {
      std::cerr << "diagnostics: could not write " << flag.path << "\n";
    }
  }
}

}  // namespace nemsim::bench
