// Shared --diagnostics[=path] flag for the figure benches.
//
// With the bare flag the bench re-runs one representative instance with a
// RunReport attached and prints its one-line summary; with =path it also
// writes the full JSON report there (run_benchmarks.sh collects these as
// BENCH_<fig>_diagnostics.json).
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "nemsim/spice/diagnostics.h"

namespace nemsim::bench {

struct DiagnosticsFlag {
  bool enabled = false;
  std::string path;  ///< empty: summary to stdout only
};

inline DiagnosticsFlag parse_diagnostics_flag(int argc, char** argv) {
  DiagnosticsFlag flag;
  const std::string prefix = "--diagnostics=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diagnostics") {
      flag.enabled = true;
    } else if (arg.rfind(prefix, 0) == 0) {
      flag.enabled = true;
      flag.path = arg.substr(prefix.size());
    }
  }
  return flag;
}

/// Variant of the flag that writes next to the baseline JSON with a
/// suffix before the extension ("..._diagnostics.json" ->
/// "..._diagnostics<suffix>.json").
inline DiagnosticsFlag suffix_variant(const DiagnosticsFlag& flag,
                                      const std::string& suffix) {
  DiagnosticsFlag out = flag;
  if (!out.path.empty()) {
    const std::size_t dot = out.path.rfind('.');
    if (dot == std::string::npos) {
      out.path += suffix;
    } else {
      out.path.insert(dot, suffix);
    }
  }
  return out;
}

/// "_accel": the representative instance re-run with the quiescent-bypass
/// + Jacobian-reuse accelerators enabled.
inline DiagnosticsFlag accel_variant(const DiagnosticsFlag& flag) {
  return suffix_variant(flag, "_accel");
}

/// "_kernels": the representative instance re-run with the type-bucketed
/// kernel lanes (NewtonOptions::kernels) enabled — the before/after pair
/// behind the EXPERIMENTS.md stamp-throughput table.
inline DiagnosticsFlag kernels_variant(const DiagnosticsFlag& flag) {
  return suffix_variant(flag, "_kernels");
}

inline void emit_report(const DiagnosticsFlag& flag,
                        const spice::RunReport& report) {
  if (!flag.enabled) return;
  std::cout << "\n" << report.summary();
  if (!flag.path.empty()) {
    std::ofstream os(flag.path);
    report.write_json(os);
    if (os) {
      std::cout << "diagnostics JSON written to " << flag.path << "\n";
    } else {
      std::cerr << "diagnostics: could not write " << flag.path << "\n";
    }
  }
}

}  // namespace nemsim::bench
