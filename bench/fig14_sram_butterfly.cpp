// Figure 14 reproduction: SRAM butterfly curves and static noise margins
// for the four cell architectures of Figure 13 (conventional, dual-Vt,
// asymmetric, hybrid NEMS-CMOS), in the read condition.
//
// Paper: hybrid SNM is ~14 % below the conventional cell but slightly
// above the other two low-leakage architectures.
#include <iostream>

#include "nemsim/core/sram.h"
#include "nemsim/util/table.h"

int main() {
  using namespace nemsim;
  using namespace nemsim::core;

  std::cout << "Figure 14: SRAM butterfly curves / static noise margin\n\n";

  const SramKind kinds[] = {SramKind::kConventional, SramKind::kDualVt,
                            SramKind::kAsymmetric, SramKind::kHybrid};

  double snm_conv = 0.0;
  std::vector<ButterflyCurves> curves;
  for (SramKind kind : kinds) {
    SramConfig c;
    c.kind = kind;
    curves.push_back(measure_butterfly(c, 121));
    if (kind == SramKind::kConventional) snm_conv = curves.back().snm;
  }

  Table t({"cell", "SNM (mV)", "SNM / conv", "paper"});
  const char* paper_notes[] = {"1.00 (reference)", "below conv",
                               "below conv", "0.86 (14 % lower)"};
  for (std::size_t k = 0; k < curves.size(); ++k) {
    t.begin_row()
        .cell(sram_kind_name(kinds[k]))
        .cell(curves[k].snm * 1e3, 4)
        .cell(curves[k].snm / snm_conv, 3)
        .cell(paper_notes[k]);
  }
  t.print(std::cout);

  // Butterfly curve samples (decimated) so the lobes can be re-plotted.
  std::cout << "\nButterfly curve samples (VQL, VQR fwd, VQR rev), "
               "decimated:\n";
  for (std::size_t k = 0; k < curves.size(); ++k) {
    const ButterflyCurves& b = curves[k];
    std::cout << "  " << sram_kind_name(kinds[k]) << ":";
    for (std::size_t i = 0; i < b.v_in.size(); i += 20) {
      std::cout << " (" << Table::format(b.v_in[i], 2) << ","
                << Table::format(b.v_fwd[i], 2) << ","
                << Table::format(b.v_rev[i], 2) << ")";
    }
    std::cout << "\n";
  }
  return 0;
}
